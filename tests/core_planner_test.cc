/**
 * @file
 * Tests for the migration planner (Algorithm 2, §3.4).
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "core/device_mapper.h"
#include "core/migration_planner.h"

namespace spotserve::core {
namespace {

const cost::CostParams kParams = cost::CostParams::awsG4dn();

class PlannerFixture : public ::testing::Test
{
  protected:
    model::ModelSpec spec = model::ModelSpec::gpt20b();
    DeviceMapper mapper{spec, kParams};
    MigrationPlanner planner{spec, kParams};

    std::vector<std::unique_ptr<cluster::Instance>> storage;
    std::vector<const cluster::Instance *> instances;

    void
    makeInstances(int n)
    {
        storage.clear();
        instances.clear();
        for (int i = 0; i < n; ++i) {
            storage.push_back(std::make_unique<cluster::Instance>(
                i, cluster::InstanceType::Spot, 4, 0.0));
            storage.back()->markRunning(0.0);
            instances.push_back(storage.back().get());
        }
    }

    engine::ContextSnapshot
    packedSnapshot(const par::ParallelConfig &cfg, double cache_tokens = 0.0)
    {
        engine::ContextSnapshot snap;
        par::Topology topo(cfg, spec.numLayers());
        for (int i = 0; i < topo.size(); ++i) {
            engine::GpuContext ctx;
            ctx.gpu = i;
            ctx.instance = i / 4;
            ctx.hasModelContext = true;
            ctx.config = cfg;
            ctx.position = topo.position(i);
            ctx.cacheTokens = cache_tokens;
            snap.gpus.push_back(ctx);
        }
        return snap;
    }
};

TEST_F(PlannerFixture, IdentityMigrationIsNearlyFree)
{
    par::ParallelConfig cfg{2, 2, 8, 8};
    makeInstances(8);
    const auto snap = packedSnapshot(cfg);
    const auto mapping = mapper.map(snap, cfg, instances, {0.0, 0.0});
    const auto plan = planner.plan(snap, mapping, cfg, {0.0, 0.0});
    EXPECT_NEAR(plan.movedModelBytes, 0.0, 1.0);
    EXPECT_DOUBLE_EQ(plan.coldLoadBytes, 0.0);
    EXPECT_LE(plan.totalDuration, kParams.migrationSetupTime + 1e-9);
}

TEST_F(PlannerFixture, ColdStartLoadsEverythingFromDisk)
{
    par::ParallelConfig cfg{1, 2, 8, 8};
    makeInstances(4);
    const auto mapping =
        mapper.map(engine::ContextSnapshot{}, cfg, instances, {});
    const auto plan =
        planner.plan(engine::ContextSnapshot{}, mapping, cfg, {});
    EXPECT_NEAR(plan.coldLoadBytes, spec.totalWeightBytes(),
                spec.totalWeightBytes() * 1e-9);
    EXPECT_DOUBLE_EQ(plan.movedModelBytes, plan.coldLoadBytes);
    // Per-instance disk loads run concurrently: the duration tracks the
    // per-instance bytes (W/4 per instance at 1 GB/s), not the total.
    const double per_instance = spec.totalWeightBytes() / 4.0;
    EXPECT_NEAR(plan.totalDuration,
                kParams.migrationSetupTime +
                    per_instance / kParams.diskBandwidth,
                2.0);
}

TEST_F(PlannerFixture, ByteConservation)
{
    // Re-parallelize (2,2,8) -> (2,3,4) on the same 8 instances: every
    // needed byte is either reused in place or moved.
    par::ParallelConfig old_cfg{2, 2, 8, 8};
    par::ParallelConfig new_cfg{2, 3, 4, 8};
    makeInstances(8);
    const auto snap = packedSnapshot(old_cfg);
    const auto mapping = mapper.map(snap, new_cfg, instances, {0.0, 0.0});
    const auto plan = planner.plan(snap, mapping, new_cfg, {0.0, 0.0});
    EXPECT_NEAR(plan.reusedBytes + plan.movedModelBytes,
                mapping.neededModelBytes, mapping.neededModelBytes * 1e-6);
    EXPECT_DOUBLE_EQ(plan.coldLoadBytes, 0.0);
    EXPECT_GT(plan.reusedBytes, 0.0);
    EXPECT_GT(plan.movedModelBytes, 0.0);
}

TEST_F(PlannerFixture, CacheStepComesFirst)
{
    par::ParallelConfig old_cfg{2, 2, 8, 8};
    par::ParallelConfig new_cfg{2, 3, 4, 8};
    makeInstances(8);
    const auto snap = packedSnapshot(old_cfg, 5000.0);
    const auto mapping =
        mapper.map(snap, new_cfg, instances, {5000.0, 5000.0});
    const auto plan =
        planner.plan(snap, mapping, new_cfg, {5000.0, 5000.0});
    ASSERT_FALSE(plan.steps.empty());
    EXPECT_TRUE(plan.cacheMigrated);
    EXPECT_TRUE(plan.steps.front().isCache());
    EXPECT_GT(plan.movedCacheBytes, 0.0);
    for (std::size_t i = 1; i < plan.steps.size(); ++i)
        EXPECT_FALSE(plan.steps[i].isCache());
}

TEST_F(PlannerFixture, MigrateCacheFalseDropsCacheStep)
{
    par::ParallelConfig old_cfg{2, 2, 8, 8};
    par::ParallelConfig new_cfg{2, 3, 4, 8};
    makeInstances(8);
    const auto snap = packedSnapshot(old_cfg, 5000.0);
    const auto mapping =
        mapper.map(snap, new_cfg, instances, {5000.0, 5000.0});
    PlannerOptions opts;
    opts.migrateCache = false;
    const auto plan =
        planner.plan(snap, mapping, new_cfg, {5000.0, 5000.0}, opts);
    EXPECT_FALSE(plan.cacheMigrated);
    EXPECT_DOUBLE_EQ(plan.movedCacheBytes, 0.0);
    for (const auto &s : plan.steps)
        EXPECT_FALSE(s.isCache());
}

TEST_F(PlannerFixture, ProgressiveResumeBeatsBlocking)
{
    par::ParallelConfig old_cfg{2, 2, 8, 8};
    par::ParallelConfig new_cfg{2, 3, 4, 8};
    makeInstances(8);
    const auto snap = packedSnapshot(old_cfg);
    const auto mapping = mapper.map(snap, new_cfg, instances, {0.0, 0.0});

    PlannerOptions progressive;
    const auto p1 = planner.plan(snap, mapping, new_cfg, {0.0, 0.0},
                                 progressive);
    PlannerOptions blocking;
    blocking.progressive = false;
    const auto p2 =
        planner.plan(snap, mapping, new_cfg, {0.0, 0.0}, blocking);

    // Progressive resume never waits longer than blocking; the *strict*
    // win shows on replicas whose context is reused in place (see
    // UntouchedReplicaResumesImmediately) — when the memory-optimised
    // order defers a front-stage layer to the end, a fully re-sharded
    // replica can only start when everything has arrived.
    EXPECT_LE(p1.resumeOffset, p2.resumeOffset + 1e-12);
    EXPECT_DOUBLE_EQ(p2.resumeOffset, p2.totalDuration);
    EXPECT_LE(p1.resumeOffset, p1.totalDuration + 1e-12);
    for (double r : p1.pipelineResume)
        EXPECT_LE(r, p1.totalDuration + 1e-12);
}

TEST_F(PlannerFixture, UntouchedReplicaResumesImmediately)
{
    // One replica keeps its context in place; the other is rebuilt on
    // four fresh instances.  The warm replica's resume must be ~setup
    // time only.
    par::ParallelConfig cfg{2, 2, 8, 8};
    makeInstances(12);
    auto snap = packedSnapshot(cfg);
    // Drop replica 0's holdings (instances 0-3) as if those were lost.
    engine::ContextSnapshot partial;
    for (const auto &g : snap.gpus) {
        if (g.instance >= 4)
            partial.gpus.push_back(g);
    }
    // Survivors: warm instances 4..7 plus fresh instances 8..11.
    std::vector<const cluster::Instance *> survivors(instances.begin() + 4,
                                                     instances.end());
    const auto mapping = mapper.map(partial, cfg, survivors, {0.0, 0.0});
    const auto plan = planner.plan(partial, mapping, cfg, {0.0, 0.0});
    ASSERT_EQ(plan.pipelineResume.size(), 2u);
    const double fast =
        std::min(plan.pipelineResume[0], plan.pipelineResume[1]);
    const double slow =
        std::max(plan.pipelineResume[0], plan.pipelineResume[1]);
    EXPECT_NEAR(fast, kParams.migrationSetupTime, 1e-6);
    EXPECT_GT(slow, fast);
}

TEST_F(PlannerFixture, MemoryOptRespectsUmaxWhenPossible)
{
    par::ParallelConfig old_cfg{2, 2, 8, 8};
    par::ParallelConfig new_cfg{2, 3, 4, 8};
    makeInstances(8);
    const auto snap = packedSnapshot(old_cfg);
    const auto mapping = mapper.map(snap, new_cfg, instances, {0.0, 0.0});

    PlannerOptions opt;
    const auto optimised = planner.plan(snap, mapping, new_cfg, {0.0, 0.0},
                                        opt);
    PlannerOptions naive;
    naive.memoryOpt = false;
    const auto plain =
        planner.plan(snap, mapping, new_cfg, {0.0, 0.0}, naive);

    EXPECT_LE(optimised.peakBufferBytes, plain.peakBufferBytes + 1.0);
    // Both plans carry every layer exactly once.
    std::set<int> layers_a, layers_b;
    for (const auto &s : optimised.steps) {
        if (!s.isCache())
            layers_a.insert(s.layer);
    }
    for (const auto &s : plain.steps) {
        if (!s.isCache())
            layers_b.insert(s.layer);
    }
    EXPECT_EQ(layers_a.size(), static_cast<std::size_t>(spec.numLayers()));
    EXPECT_EQ(layers_a, layers_b);
    EXPECT_NEAR(optimised.movedModelBytes, plain.movedModelBytes, 1.0);
}

TEST_F(PlannerFixture, StageReadyWithinTotal)
{
    par::ParallelConfig old_cfg{2, 2, 8, 8};
    par::ParallelConfig new_cfg{2, 3, 4, 8};
    makeInstances(8);
    const auto snap = packedSnapshot(old_cfg);
    const auto mapping = mapper.map(snap, new_cfg, instances, {0.0, 0.0});
    const auto plan = planner.plan(snap, mapping, new_cfg, {0.0, 0.0});
    ASSERT_EQ(plan.stageReady.size(), 3u);
    for (double r : plan.stageReady) {
        EXPECT_GE(r, 0.0);
        EXPECT_LE(r, plan.totalDuration + 1e-9);
    }
    // Step durations sum to the total.
    double sum = kParams.migrationSetupTime;
    for (const auto &s : plan.steps)
        sum += s.duration;
    EXPECT_NEAR(sum, plan.totalDuration, 1e-6);
}

TEST_F(PlannerFixture, ScaleInFindsPeerSources)
{
    // (2,2,8) on 8 instances -> (1,2,8) on 4 survivors: the survivors
    // hold replica-0 or replica-1 context; all needs are servable from
    // peers, nothing from disk.
    par::ParallelConfig old_cfg{2, 2, 8, 8};
    par::ParallelConfig new_cfg{1, 2, 8, 8};
    makeInstances(8);
    const auto snap = packedSnapshot(old_cfg);
    std::vector<const cluster::Instance *> survivors(instances.begin(),
                                                     instances.begin() + 4);
    engine::ContextSnapshot partial;
    for (const auto &g : snap.gpus) {
        if (g.instance < 4)
            partial.gpus.push_back(g);
    }
    const auto mapping = mapper.map(partial, new_cfg, survivors, {0.0});
    const auto plan = planner.plan(partial, mapping, new_cfg, {0.0});
    EXPECT_DOUBLE_EQ(plan.coldLoadBytes, 0.0);
    // Identity on the survivors: nothing moves either.
    EXPECT_NEAR(plan.movedModelBytes, 0.0, 1.0);
}

TEST_F(PlannerFixture, StepEventScheduleIsConsistent)
{
    // Serialized-cursor ablation (linkSchedule off): the per-step event
    // schedule (startOffset/finishOffset) must agree with the legacy
    // duration chain — wire starts serialize, finishes are monotone,
    // stageReady matches the latest finishing step of each stage, and
    // durations telescope to totalDuration.
    par::ParallelConfig old_cfg{2, 2, 8, 8};
    par::ParallelConfig new_cfg{2, 3, 4, 8};
    makeInstances(8);
    const auto snap = packedSnapshot(old_cfg, 600.0);
    const auto mapping = mapper.map(snap, new_cfg, instances, {600.0, 600.0});
    PlannerOptions serialized;
    serialized.linkSchedule = false;
    const auto plan =
        planner.plan(snap, mapping, new_cfg, {600.0, 600.0}, serialized);
    ASSERT_FALSE(plan.steps.empty());
    EXPECT_FALSE(plan.linkScheduled);
    EXPECT_DOUBLE_EQ(plan.serializedDuration, plan.totalDuration);

    double prev_start = kParams.migrationSetupTime;
    double prev_finish = kParams.migrationSetupTime;
    double sum = kParams.migrationSetupTime;
    std::vector<double> stage_latest(new_cfg.pp, kParams.migrationSetupTime);
    const par::Topology topo(new_cfg, spec.numLayers());
    for (const auto &s : plan.steps) {
        EXPECT_GE(s.startOffset, prev_start - 1e-9); // wire serializes
        EXPECT_GE(s.finishOffset, s.startOffset - 1e-9);
        EXPECT_GE(s.finishOffset, prev_finish - 1e-9); // monotone finishes
        EXPECT_LE(s.finishOffset, plan.totalDuration + 1e-9);
        sum += s.duration;
        EXPECT_NEAR(s.duration,
                    std::max(s.finishOffset - prev_finish, 0.0), 1e-9);
        prev_start = s.startOffset;
        prev_finish = std::max(prev_finish, s.finishOffset);
        if (!s.isCache()) {
            const int p = topo.stageOfLayer(s.layer);
            stage_latest[p] = std::max(stage_latest[p], s.finishOffset);
        }
    }
    EXPECT_NEAR(sum, plan.totalDuration, 1e-6);
    for (int p = 0; p < new_cfg.pp; ++p)
        EXPECT_GE(plan.stageReady[p] + 1e-9, stage_latest[p]);
}

TEST_F(PlannerFixture, LinkScheduledPlanBeatsOrMatchesSerializedCursor)
{
    // Default (link-scheduled) timing: step finishes need not be
    // monotone — disjoint instance pairs overlap — but every finish
    // stays inside totalDuration, stageReady still tracks the latest
    // finishing step of each stage, the per-replica resumes stay causal,
    // and the adopted makespan never exceeds the serialized-cursor
    // estimate the ablation would have charged.
    par::ParallelConfig old_cfg{2, 2, 8, 8};
    par::ParallelConfig new_cfg{2, 3, 4, 8};
    makeInstances(8);
    const auto snap = packedSnapshot(old_cfg, 600.0);
    const auto mapping = mapper.map(snap, new_cfg, instances, {600.0, 600.0});
    const auto plan = planner.plan(snap, mapping, new_cfg, {600.0, 600.0});
    ASSERT_FALSE(plan.steps.empty());

    PlannerOptions serialized;
    serialized.linkSchedule = false;
    const auto legacy =
        planner.plan(snap, mapping, new_cfg, {600.0, 600.0}, serialized);

    EXPECT_DOUBLE_EQ(plan.serializedDuration, legacy.totalDuration);
    EXPECT_LE(plan.totalDuration, plan.serializedDuration + 1e-9);
    // This transition has two replicas exchanging context over disjoint
    // NIC pairs: interleaving must genuinely beat the serial cursor.
    EXPECT_LT(plan.totalDuration, plan.serializedDuration - 1e-6);
    EXPECT_TRUE(plan.linkScheduled);

    std::vector<double> stage_latest(new_cfg.pp,
                                     kParams.migrationSetupTime);
    const par::Topology topo(new_cfg, spec.numLayers());
    for (const auto &s : plan.steps) {
        EXPECT_GE(s.startOffset, kParams.migrationSetupTime - 1e-9);
        EXPECT_GE(s.finishOffset, s.startOffset - 1e-9);
        EXPECT_LE(s.finishOffset, plan.totalDuration + 1e-9);
        if (!s.isCache()) {
            const int p = topo.stageOfLayer(s.layer);
            stage_latest[p] = std::max(stage_latest[p], s.finishOffset);
        }
    }
    for (int p = 0; p < new_cfg.pp; ++p)
        EXPECT_NEAR(plan.stageReady[p], stage_latest[p], 1e-9);
    for (int d = 0; d < new_cfg.dp; ++d) {
        EXPECT_GE(plan.pipelineResume[d],
                  kParams.migrationSetupTime - 1e-9);
        EXPECT_LE(plan.pipelineResume[d], plan.totalDuration + 1e-9);
    }
    // Identical byte accounting in both modes: timing is the only thing
    // the scheduler changes.
    EXPECT_DOUBLE_EQ(plan.movedModelBytes, legacy.movedModelBytes);
    EXPECT_DOUBLE_EQ(plan.movedCacheBytes, legacy.movedCacheBytes);
    EXPECT_DOUBLE_EQ(plan.reusedBytes, legacy.reusedBytes);
}

TEST_F(PlannerFixture, RetimeShiftsResumesWithStepFinishes)
{
    // retime() re-derives every timing field from external step finishes
    // (what the transfer data plane feeds back after scheduling against
    // busy links): shifting all finishes by a constant shifts
    // totalDuration and every resume by at most that constant, and
    // keeps stageReady consistent.
    par::ParallelConfig old_cfg{2, 2, 8, 8};
    par::ParallelConfig new_cfg{2, 3, 4, 8};
    makeInstances(8);
    const auto snap = packedSnapshot(old_cfg, 600.0);
    const auto mapping = mapper.map(snap, new_cfg, instances, {600.0, 600.0});
    auto plan = planner.plan(snap, mapping, new_cfg, {600.0, 600.0});
    ASSERT_FALSE(plan.steps.empty());
    const double base_total = plan.totalDuration;
    const double base_resume = plan.resumeOffset;

    const double shift = 2.5;
    std::vector<double> starts, finishes;
    for (const auto &s : plan.steps) {
        starts.push_back(s.startOffset + shift);
        finishes.push_back(s.finishOffset + shift);
    }
    planner.retime(plan, new_cfg, PlannerOptions{}, starts, finishes);
    EXPECT_NEAR(plan.totalDuration, base_total + shift, 1e-9);
    EXPECT_GE(plan.resumeOffset, base_resume - 1e-9);
    EXPECT_LE(plan.resumeOffset, base_resume + shift + 1e-9);
    for (int d = 0; d < new_cfg.dp; ++d)
        EXPECT_LE(plan.pipelineResume[d], plan.totalDuration + 1e-9);
}

TEST_F(PlannerFixture, PlanBothMatchesTwoSeparatePasses)
{
    // planBoth must be byte-identical to invoking plan() twice with
    // migrateCache toggled — it exists so beginReconfig stops paying a
    // second full analysis pass when the arranger flips to recompute.
    par::ParallelConfig old_cfg{2, 2, 8, 8};
    par::ParallelConfig new_cfg{2, 3, 4, 8};
    makeInstances(8);
    const auto snap = packedSnapshot(old_cfg, 600.0);
    const auto mapping = mapper.map(snap, new_cfg, instances, {600.0, 600.0});

    const auto pair =
        planner.planBoth(snap, mapping, new_cfg, {600.0, 600.0});
    const auto with = planner.plan(snap, mapping, new_cfg, {600.0, 600.0});
    PlannerOptions no_cache;
    no_cache.migrateCache = false;
    const auto without =
        planner.plan(snap, mapping, new_cfg, {600.0, 600.0}, no_cache);

    auto expect_equal = [](const MigrationPlan &a, const MigrationPlan &b) {
        EXPECT_DOUBLE_EQ(a.totalDuration, b.totalDuration);
        EXPECT_DOUBLE_EQ(a.resumeOffset, b.resumeOffset);
        EXPECT_DOUBLE_EQ(a.movedModelBytes, b.movedModelBytes);
        EXPECT_DOUBLE_EQ(a.movedCacheBytes, b.movedCacheBytes);
        EXPECT_DOUBLE_EQ(a.reusedBytes, b.reusedBytes);
        EXPECT_DOUBLE_EQ(a.peakBufferBytes, b.peakBufferBytes);
        EXPECT_EQ(a.cacheMigrated, b.cacheMigrated);
        ASSERT_EQ(a.steps.size(), b.steps.size());
        for (std::size_t i = 0; i < a.steps.size(); ++i) {
            EXPECT_EQ(a.steps[i].layer, b.steps[i].layer);
            EXPECT_DOUBLE_EQ(a.steps[i].startOffset, b.steps[i].startOffset);
            EXPECT_DOUBLE_EQ(a.steps[i].finishOffset,
                             b.steps[i].finishOffset);
            EXPECT_DOUBLE_EQ(a.steps[i].duration, b.steps[i].duration);
        }
        ASSERT_EQ(a.pipelineResume.size(), b.pipelineResume.size());
        for (std::size_t d = 0; d < a.pipelineResume.size(); ++d)
            EXPECT_DOUBLE_EQ(a.pipelineResume[d], b.pipelineResume[d]);
    };
    expect_equal(pair.withCache, with);
    expect_equal(pair.withoutCache, without);
    EXPECT_TRUE(pair.withCache.cacheMigrated);
    EXPECT_FALSE(pair.withoutCache.cacheMigrated);
    EXPECT_DOUBLE_EQ(pair.withoutCache.movedCacheBytes, 0.0);
}

} // namespace
} // namespace spotserve::core
