/**
 * @file
 * Robustness sweeps: every ablation-switch combination must survive the
 * hostile trace; the latency model must keep its monotonicity properties
 * across every model and parallelism.
 */

#include <gtest/gtest.h>

#include "cluster/trace_library.h"
#include "costmodel/latency_model.h"
#include "serving/presets.h"

namespace spotserve {
namespace {

const cost::CostParams kParams = cost::CostParams::awsG4dn();
const cost::SeqSpec kSeq{};

/**
 * All 16 combinations of the four Figure 9 switches.  Every combination
 * is a supported operating mode and must complete the full hostile-trace
 * workload without deadlocks or lost requests.
 */
class AblationComboSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(AblationComboSweep, CompletesHostileTrace)
{
    const int mask = GetParam();
    core::SpotServeOptions options;
    options.enableController = mask & 1;
    options.enableDeviceMapper = mask & 2;
    options.enableMigrationPlanner = mask & 4;
    options.enableArranger = mask & 8;
    options.designArrivalRate = 0.35;

    const auto spec = model::ModelSpec::gpt20b();
    const auto trace = cluster::traceBS();
    sim::Rng rng(7);
    const auto workload =
        wl::stationaryGamma(0.35, 6.0, trace.duration(), kSeq, rng);
    const auto factory =
        presets::spotServeFactory(spec, kParams, kSeq, options);
    const auto r =
        serving::runExperiment(spec, kParams, trace, workload, factory);
    EXPECT_EQ(r.unfinished, 0) << "mask=" << mask;
    EXPECT_EQ(r.arrived, r.completed) << "mask=" << mask;
}

INSTANTIATE_TEST_SUITE_P(AllSwitches, AblationComboSweep,
                         ::testing::Range(0, 16));

/** Latency-model monotonicity across every evaluated model. */
class ModelSweep : public ::testing::TestWithParam<int>
{
  protected:
    model::ModelSpec
    spec() const
    {
        return presets::evaluatedModels()[GetParam()];
    }
};

TEST_P(ModelSweep, DecodeMonotoneInContextAndBatch)
{
    cost::LatencyModel lat(spec(), kParams);
    for (int tp : {1, 2, 4, 8}) {
        par::ParallelConfig c{1, 2, tp, 1};
        double prev = 0.0;
        for (int ctx : {1, 256, 512, 1024}) {
            const double t = lat.decodeIterTime(c, ctx);
            EXPECT_GT(t, prev) << "tp=" << tp << " ctx=" << ctx;
            prev = t;
        }
        prev = 0.0;
        for (int b : {1, 2, 4, 8}) {
            par::ParallelConfig cb{1, 2, tp, b};
            const double t = lat.decodeIterTime(cb, 512);
            EXPECT_GT(t, prev) << "tp=" << tp << " b=" << b;
            prev = t;
        }
    }
}

TEST_P(ModelSweep, PipelineDepthAddsOnlyCommunication)
{
    // Splitting into more stages keeps the weight traffic constant; the
    // per-iteration delta is bounded by the extra hand-offs.
    cost::LatencyModel lat(spec(), kParams);
    const double p1 = lat.decodeIterTime(par::ParallelConfig{1, 1, 4, 1},
                                         512);
    const double p4 = lat.decodeIterTime(par::ParallelConfig{1, 4, 4, 1},
                                         512);
    EXPECT_GT(p4, p1);
    EXPECT_LT(p4 - p1, 0.05 * p1 + 0.01);
}

TEST_P(ModelSweep, ThroughputMonotoneInBatch)
{
    cost::LatencyModel lat(spec(), kParams);
    cost::ThroughputModel thr(lat);
    cost::MemoryModel mem(spec(), kParams);
    double prev = 0.0;
    for (int b : {1, 2, 4, 8}) {
        par::ParallelConfig c{1, 2, 8, b};
        if (!mem.fits(c, kSeq))
            continue;
        const double phi = thr.throughput(c, kSeq);
        EXPECT_GT(phi, prev) << "b=" << b;
        prev = phi;
    }
}

TEST_P(ModelSweep, ColdLoadScalesInverselyWithParallelism)
{
    cost::LatencyModel lat(spec(), kParams);
    const double narrow =
        lat.coldLoadTime(par::ParallelConfig{1, 2, 4, 1});
    const double wide = lat.coldLoadTime(par::ParallelConfig{1, 2, 8, 1});
    EXPECT_GT(narrow, wide);
}

INSTANTIATE_TEST_SUITE_P(Models, ModelSweep, ::testing::Range(0, 3));

/** Every system finishes every Figure 5 trace for the small model. */
class TraceSystemSweep
    : public ::testing::TestWithParam<std::tuple<int, const char *>>
{
};

TEST_P(TraceSystemSweep, CompletesEverything)
{
    const auto [trace_idx, system] = GetParam();
    const auto trace = cluster::figure5Traces()[trace_idx];
    const auto spec = model::ModelSpec::opt6_7b();
    const auto r = presets::runStable(spec, trace, system);
    EXPECT_EQ(r.unfinished, 0) << system << " on " << trace.name();
    EXPECT_GT(r.costUsd, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TraceSystemSweep,
    ::testing::Combine(::testing::Range(0, 4),
                       ::testing::Values("SpotServe", "Reparallelization",
                                         "Rerouting")));

} // namespace
} // namespace spotserve
