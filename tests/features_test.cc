/**
 * @file
 * Tests for the SLO objective, dynamic fleet management (Algorithm 1
 * lines 6-10), and fault-tolerance paths (§4.2).
 */

#include <gtest/gtest.h>

#include "simcore/simulation.h"
#include "cluster/trace_library.h"
#include "core/controller.h"
#include "core/spotserve_system.h"
#include "serving/experiment.h"
#include "serving/presets.h"

namespace spotserve {
namespace {

using cluster::AvailabilityTrace;
using cluster::InstanceType;
using cluster::TraceEvent;
using cluster::TraceEventKind;

const cost::CostParams kParams = cost::CostParams::awsG4dn();
const cost::SeqSpec kSeq{};

// ---------------------------------------------------------------------
// SLO objective (§3.2 "other targets are also feasible")
// ---------------------------------------------------------------------

TEST(SloObjectiveTest, GenerousSloPicksCheaperConfig)
{
    const auto spec = model::ModelSpec::gpt20b();
    core::ControllerOptions lat_opts;
    core::ParallelizationController min_latency(spec, kParams, kSeq, {},
                                                lat_opts);
    core::ControllerOptions slo_opts;
    slo_opts.sloLatency = 200.0;
    core::ParallelizationController with_slo(spec, kParams, kSeq, {},
                                             slo_opts);

    const auto a = min_latency.chooseConfig(12, 0.35);
    const auto b = with_slo.chooseConfig(12, 0.35);
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_LE(b->instancesNeeded, a->instancesNeeded);
    EXPECT_LE(b->estimatedLatency, 200.0);
    EXPECT_TRUE(b->meetsDemand);
}

TEST(SloObjectiveTest, TightSloFallsBackToMinLatency)
{
    const auto spec = model::ModelSpec::gpt20b();
    core::ControllerOptions slo_opts;
    slo_opts.sloLatency = 1.0; // impossible
    core::ParallelizationController with_slo(spec, kParams, kSeq, {},
                                             slo_opts);
    core::ParallelizationController plain(spec, kParams, kSeq);
    const auto a = with_slo.chooseConfig(12, 0.35);
    const auto b = plain.chooseConfig(12, 0.35);
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(a->config, b->config);
}

TEST(SloObjectiveTest, SloBindsProgressively)
{
    // Tightening the SLO can only raise the money spent.
    const auto spec = model::ModelSpec::gpt20b();
    int prev_instances = 0;
    for (double slo : {400.0, 120.0, 60.0}) {
        core::ControllerOptions opts;
        opts.sloLatency = slo;
        core::ParallelizationController ctrl(spec, kParams, kSeq, {}, opts);
        const auto d = ctrl.chooseConfig(12, 0.35);
        ASSERT_TRUE(d.has_value());
        EXPECT_GE(d->instancesNeeded, prev_instances);
        prev_instances = d->instancesNeeded;
    }
}

// ---------------------------------------------------------------------
// Dynamic fleet management (Algorithm 1 lines 6-10)
// ---------------------------------------------------------------------

serving::ExperimentResult
runDynamic(core::SpotServeOptions options, const AvailabilityTrace &trace,
           const wl::Workload &workload)
{
    const auto spec = model::ModelSpec::gpt20b();
    const auto factory =
        presets::spotServeFactory(spec, kParams, kSeq, options);
    return serving::runExperiment(spec, kParams, trace, workload, factory);
}

TEST(DynamicAllocationTest, BootstrapsFleetFromNothing)
{
    // The trace provides zero instances; dynamic mode must allocate its
    // own fleet and serve everything.
    AvailabilityTrace empty("empty", 1800.0, {});
    sim::Rng rng(5);
    const auto workload =
        wl::stationaryGamma(0.35, 2.0, 1500.0, kSeq, rng);

    core::SpotServeOptions options;
    options.dynamicAllocation = true;
    options.designArrivalRate = 0.35;
    const auto r = runDynamic(options, empty, workload);
    EXPECT_EQ(r.unfinished, 0);
    EXPECT_GT(r.completed, 0);
    EXPECT_GT(r.costUsd, 0.0);
    EXPECT_FALSE(r.configHistory.empty());
}

TEST(DynamicAllocationTest, KeepsCandidatePool)
{
    AvailabilityTrace empty("empty", 1800.0, {});
    sim::Rng rng(5);
    const auto workload = wl::stationaryGamma(0.35, 2.0, 900.0, kSeq, rng);

    sim::Simulation sim;
    cluster::InstanceManager instances(sim, kParams);
    serving::RequestManager requests(sim);
    core::SpotServeOptions options;
    options.dynamicAllocation = true;
    options.designArrivalRate = 0.35;
    options.candidatePoolSize = 2;
    core::SpotServeSystem system(sim, instances, requests,
                                 model::ModelSpec::gpt20b(), kParams, kSeq,
                                 options);
    instances.setListener(&system);
    instances.loadTrace(empty);
    for (const auto &req : workload) {
        sim.schedule(req.arrival,
                     [&system, req] { system.onRequestArrival(req); });
    }
    sim.run(1200.0);
    ASSERT_TRUE(system.currentConfig().has_value());
    // Fleet = what the config occupies + the candidate pool, capped at
    // the dynamic-allocation limit.
    cost::ConfigSpace space(model::ModelSpec::gpt20b(), kParams, kSeq);
    const int needed = space.instancesNeeded(*system.currentConfig());
    EXPECT_EQ(instances.planningCount(),
              std::min(options.maxDynamicInstances, needed + 2));
    EXPECT_GE(instances.planningCount(), needed);
}

TEST(DynamicAllocationTest, RespectsMaxInstances)
{
    AvailabilityTrace empty("empty", 1800.0, {});
    sim::Rng rng(5);
    // Demand far beyond the cap.
    const auto workload = wl::stationaryGamma(3.0, 2.0, 900.0, kSeq, rng);
    core::SpotServeOptions options;
    options.dynamicAllocation = true;
    options.designArrivalRate = 3.0;
    options.maxDynamicInstances = 6;

    sim::Simulation sim;
    cluster::InstanceManager instances(sim, kParams);
    serving::RequestManager requests(sim);
    core::SpotServeSystem system(sim, instances, requests,
                                 model::ModelSpec::gpt20b(), kParams, kSeq,
                                 options);
    instances.setListener(&system);
    for (const auto &req : workload) {
        sim.schedule(req.arrival,
                     [&system, req] { system.onRequestArrival(req); });
    }
    sim.run(1200.0);
    EXPECT_LE(instances.planningCount(), 6);
}

TEST(DynamicAllocationTest, ScalesDownAfterBurst)
{
    // High design rate for the first phase via arrivals; after the burst,
    // the 120 s estimate decays and the fleet shrinks toward the design
    // floor's needs.
    AvailabilityTrace empty("empty", 3600.0, {});
    sim::Rng rng(5);
    auto rate = [](sim::SimTime t) { return t < 900.0 ? 1.0 : 0.05; };
    const auto workload = wl::fluctuating(rate, 1.0, 3000.0, kSeq, rng);

    sim::Simulation sim;
    cluster::InstanceManager instances(sim, kParams);
    serving::RequestManager requests(sim);
    core::SpotServeOptions options;
    options.dynamicAllocation = true;
    options.designArrivalRate = 0.05;
    // Poisson traffic in this test; with CV = 6 the optimizer correctly
    // keeps large burst headroom and never consolidates.
    options.controller.arrivalCv = 1.0;
    core::SpotServeSystem system(sim, instances, requests,
                                 model::ModelSpec::gpt20b(), kParams, kSeq,
                                 options);
    instances.setListener(&system);
    instances.loadTrace(empty);
    for (const auto &req : workload) {
        sim.schedule(req.arrival,
                     [&system, req] { system.onRequestArrival(req); });
    }
    sim.run(800.0);
    const int during_burst = instances.planningCount();
    sim.run(3600.0);
    const int after = instances.planningCount();
    EXPECT_LT(after, during_burst);
    EXPECT_EQ(requests.unfinishedCount(), 0);
}

// ---------------------------------------------------------------------
// Fault tolerance (§4.2)
// ---------------------------------------------------------------------

TEST(FaultToleranceTest, MassPreemptionDuringMigration)
{
    // Hammer the system with notices 10 s apart so grace periods overlap
    // and migrations race preemptions; nothing may deadlock or be lost.
    std::vector<TraceEvent> events{
        TraceEvent{0.0, TraceEventKind::Join, InstanceType::Spot, 12}};
    for (int k = 0; k < 6; ++k) {
        events.push_back(TraceEvent{300.0 + 10.0 * k,
                                    TraceEventKind::PreemptNotice,
                                    InstanceType::Spot, 1});
    }
    events.push_back(
        TraceEvent{600.0, TraceEventKind::Join, InstanceType::Spot, 6});
    AvailabilityTrace trace("storm", 1800.0, std::move(events));

    const auto spec = model::ModelSpec::gpt20b();
    sim::Rng rng(9);
    const auto workload =
        wl::stationaryGamma(0.35, 6.0, trace.duration(), kSeq, rng);
    const auto factory =
        presets::factoryByName("SpotServe", spec, kParams, kSeq, 0.35);
    const auto r =
        serving::runExperiment(spec, kParams, trace, workload, factory);
    EXPECT_EQ(r.unfinished, 0);
    EXPECT_EQ(r.arrived, r.completed);
}

TEST(FaultToleranceTest, ReleaseOfMeshInstanceHandled)
{
    // A trace release can hit an instance the mesh is using; affected
    // replicas restart their requests and the system re-plans.
    AvailabilityTrace trace(
        "release", 1800.0,
        {TraceEvent{0.0, TraceEventKind::Join, InstanceType::OnDemand, 8},
         TraceEvent{400.0, TraceEventKind::Release, InstanceType::OnDemand,
                    4}});
    const auto spec = model::ModelSpec::gpt20b();
    sim::Rng rng(9);
    const auto workload = wl::stationaryGamma(0.2, 2.0, 1500.0, kSeq, rng);
    const auto factory =
        presets::factoryByName("SpotServe", spec, kParams, kSeq, 0.2);
    const auto r =
        serving::runExperiment(spec, kParams, trace, workload, factory);
    EXPECT_EQ(r.unfinished, 0);
}

TEST(FaultToleranceTest, AllSystemsSurviveTheStorm)
{
    std::vector<TraceEvent> events{
        TraceEvent{0.0, TraceEventKind::Join, InstanceType::Spot, 12}};
    for (int k = 0; k < 4; ++k) {
        events.push_back(TraceEvent{200.0 + 15.0 * k,
                                    TraceEventKind::PreemptNotice,
                                    InstanceType::Spot, 1});
    }
    AvailabilityTrace trace("storm2", 1800.0, std::move(events));
    const auto spec = model::ModelSpec::opt6_7b();
    sim::Rng rng(9);
    const auto workload =
        wl::stationaryGamma(1.5, 6.0, trace.duration(), kSeq, rng);
    for (const char *system :
         {"SpotServe", "Reparallelization", "Rerouting"}) {
        const auto factory =
            presets::factoryByName(system, spec, kParams, kSeq, 1.5);
        const auto r =
            serving::runExperiment(spec, kParams, trace, workload, factory);
        EXPECT_EQ(r.unfinished, 0) << system;
    }
}

} // namespace
} // namespace spotserve
