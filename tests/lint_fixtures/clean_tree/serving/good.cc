// Clean-tree fixture: nothing to report.
int cleanTreeServingPath(int queued)
{
    return queued > 0 ? queued - 1 : 0;
}
