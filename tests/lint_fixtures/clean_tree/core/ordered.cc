// Clean-tree fixture: ordered containers iterate freely, unordered ones
// answer membership probes only.
#include <map>
#include <unordered_set>

double cleanTreePlanningScan()
{
    std::map<int, double> deadlines;
    std::unordered_set<int> doomed;
    double earliest = 1e300;
    for (const auto &[id, at] : deadlines)
        if (doomed.find(id) == doomed.end() && at < earliest)
            earliest = at;
    return earliest;
}
