// Fixture: naming Simulation at all in a header outside simcore/ is a
// seam violation, even held by value.
#ifndef FIXTURE_SEAM_HEADER_H
#define FIXTURE_SEAM_HEADER_H

namespace spotserve::sim { class Simulation; }

struct FixtureSeamMember
{
    spotserve::sim::Simulation *engine;
};

#endif
