// Fixture: seam violation, suppressed with a reason.
namespace spotserve::sim { class Simulation; }

// SPOTSERVE_LINT_ALLOW(seam): fixture — composition root needs the concrete type
void fixtureSeamAllowed(spotserve::sim::Simulation &simulation);
