// Fixture: seam violations — Simulation by reference and by pointer.
namespace spotserve::sim { class Simulation; }

void fixtureSeamRef(spotserve::sim::Simulation &simulation);
void fixtureSeamPtr(spotserve::sim::Simulation *simulation);
