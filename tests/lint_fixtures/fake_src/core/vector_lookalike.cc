// ...and this core/ file iterates a VECTOR with the same name: local
// unordered names must not leak across files (members, with their
// trailing underscore, do — see cross_file_member.*).
#include <vector>

int fixtureVectorScratch()
{
    std::vector<int> scratch = {1, 2, 3};
    int sum = 0;
    for (int v : scratch) // not a violation: this scratch is a vector
        sum += v;
    return sum;
}
