// Fixture: unordered iteration in core/ — range-for and iterator walk.
#include <unordered_map>
#include <unordered_set>

int fixtureCoreIteration()
{
    std::unordered_map<int, double> weights;
    std::unordered_set<int> members;
    double sum = 0.0;
    for (const auto &[id, w] : weights)   // violation: range-for
        sum += w;
    for (auto it = members.begin(); it != members.end(); ++it) // violation: .begin()
        sum += static_cast<double>(*it);
    return static_cast<int>(sum);
}
