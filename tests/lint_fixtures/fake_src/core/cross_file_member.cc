// ...and ITERATED here: the tree-wide name collection must connect them.
#include "cross_file_member.h"

int FixtureCrossFile::total() const
{
    int sum = 0;
    for (const auto &entry : pendingByInstance_) // violation: member declared in .h
        sum += entry.second;
    return sum;
}
