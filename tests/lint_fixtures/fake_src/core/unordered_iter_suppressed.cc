// Fixture: unordered iteration in core/, suppressed with a reason.
#include <unordered_map>

double fixtureCoreSuppressed()
{
    std::unordered_map<int, double> loads;
    double peak = 0.0;
    // SPOTSERVE_LINT_ALLOW(unordered-iteration): fixture — order-independent max
    for (const auto &[id, v] : loads)
        peak = (v > peak) ? v : peak;
    return peak;
}
