// Fixture: the unordered member is DECLARED here...
#ifndef FIXTURE_CROSS_FILE_MEMBER_H
#define FIXTURE_CROSS_FILE_MEMBER_H

#include <unordered_map>

struct FixtureCrossFile
{
    int total() const;
    std::unordered_map<int, int> pendingByInstance_;
};

#endif
