// Fixture: this path is on the nondeterminism allowlist AND inside
// simcore/, so the clock read and the Simulation reference are fine.
#include <chrono>

namespace spotserve::sim { class Simulation; }

double fixtureAllowlistedClockRead(spotserve::sim::Simulation &simulation)
{
    (void)simulation;
    auto t = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t.time_since_epoch()).count();
}
