// Fixture: the rule also covers costmodel/; unknown ALLOW rules are
// themselves violations.
#include <unordered_set>

int fixtureCostmodelIteration()
{
    std::unordered_set<int> instances;
    int count = 0;
    for (int id : instances) // violation: range-for in costmodel/
        count += id;
    // SPOTSERVE_LINT_ALLOW(bogus-rule): violation — no such rule
    return count;
}
