// Fixture: the same sources, every one suppressed (both ALLOW forms).
#include <chrono>
#include <cstdlib>

double fixtureSuppressedClockRead()
{
    auto t = std::chrono::steady_clock::now(); // SPOTSERVE_LINT_ALLOW(nondeterminism): fixture same-line suppression
    // SPOTSERVE_LINT_ALLOW(nondeterminism): fixture previous-line suppression
    int r = rand();
    (void)t;
    return static_cast<double>(r);
}
