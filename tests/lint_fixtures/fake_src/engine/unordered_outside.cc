// Fixture: unordered iteration OUTSIDE core//costmodel/ — allowed.
#include <unordered_map>

int fixtureSumOutsideScope()
{
    std::unordered_map<int, int> histogram;
    int sum = 0;
    for (const auto &entry : histogram)
        sum += entry.second;
    return sum;
}
