// Fixture: clean file.  steady_clock and rand() in comments only; the
// unordered_map is used for membership, never iterated — and iteration
// rules do not apply outside core/ and costmodel/ anyway.
#include <unordered_map>

bool fixtureCleanLookup(int key)
{
    std::unordered_map<int, int> cache;
    cache[key] = 1;
    return cache.find(key) != cache.end();
}

int fixtureNamedLikeBanned(int time_budget, int randomize)
{
    // Identifiers merely containing banned substrings must not fire:
    int uptime = time_budget;
    int randomized = randomize;
    return uptime + randomized;
}
