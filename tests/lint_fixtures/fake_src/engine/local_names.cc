// Fixture: this file's unordered LOCAL is named 'scratch'...
#include <unordered_set>

bool fixtureLocalScratch(int id)
{
    std::unordered_set<int> scratch;
    scratch.insert(id);
    return scratch.count(id) > 0;
}
