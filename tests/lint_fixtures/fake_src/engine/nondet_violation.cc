// Fixture: every line here seeds a nondeterminism violation.
#include <chrono>
#include <cstdlib>
#include <random>
#include <thread>

double fixtureClockRead()
{
    auto t = std::chrono::steady_clock::now();      // violation: steady_clock
    auto w = std::chrono::system_clock::now();      // violation: system_clock
    std::this_thread::sleep_for(std::chrono::seconds(1)); // 2x: this_thread + sleep_for
    int r = rand();                                 // violation: rand()
    std::random_device rd;                          // violation: random_device
    long stamp = time(nullptr);                     // violation: time()
    (void)t;
    (void)w;
    (void)rd;
    return static_cast<double>(r + stamp);
}
