/**
 * @file
 * Loopback smoke tests for the socket ingress front door: a real TCP
 * client talks to a SpotServe system driven by the WallClockExecutor at
 * a high time scale, so whole generations complete in milliseconds of
 * real time while crossing the full admission/batching/engine path.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <future>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cluster/availability_trace.h"
#include "serving/base_system.h"
#include "serving/presets.h"
#include "serving/socket_ingress.h"
#include "simcore/wallclock_executor.h"

namespace spotserve {
namespace {

/** Blocking line-oriented loopback client with a receive timeout. */
class LineClient
{
  public:
    /** @param rcvbufBytes shrink the receive window (slow-reader tests). */
    explicit LineClient(int port, int rcvbufBytes = 0)
    {
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        EXPECT_GE(fd_, 0);
        timeval tv{};
        tv.tv_sec = 20; // generous: CI machines stall
        ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
        if (rcvbufBytes > 0)
            ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbufBytes,
                         sizeof(rcvbufBytes));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(static_cast<std::uint16_t>(port));
        ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
        EXPECT_EQ(::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                            sizeof(addr)),
                  0);
    }

    ~LineClient()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    void sendLine(const std::string &line)
    {
        std::string wire = line + "\n";
        ASSERT_EQ(::send(fd_, wire.data(), wire.size(), 0),
                  static_cast<ssize_t>(wire.size()));
    }

    /** Next full line, or empty string on timeout/close. */
    std::string readLine()
    {
        for (;;) {
            const std::size_t nl = buffer_.find('\n');
            if (nl != std::string::npos) {
                std::string line = buffer_.substr(0, nl);
                buffer_.erase(0, nl + 1);
                return line;
            }
            char buf[512];
            const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
            if (n <= 0)
                return "";
            buffer_.append(buf, static_cast<std::size_t>(n));
        }
    }

    /** Read lines until one starts with @p prefix (inclusive). */
    std::vector<std::string> readUntil(const std::string &prefix)
    {
        std::vector<std::string> lines;
        for (;;) {
            std::string line = readLine();
            if (line.empty())
                return lines; // timeout — let the caller's asserts fail
            lines.push_back(line);
            if (line.compare(0, prefix.size(), prefix) == 0)
                return lines;
        }
    }

    int fd() const { return fd_; }

  private:
    int fd_ = -1;
    std::string buffer_;
};

/** A live server on an ephemeral loopback port, torn down in order. */
class IngressFixture : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        const auto spec = model::ModelSpec::opt6_7b();
        const cost::CostParams params = cost::CostParams::awsG4dn();
        const cost::SeqSpec seq{};

        sim::WallClockExecutor::Options execOptions;
        execOptions.timeScale = 1000.0;
        executor_ = std::make_unique<sim::WallClockExecutor>(execOptions);
        fleet_ = std::make_unique<cluster::InstanceManager>(*executor_,
                                                            params);
        requests_ = std::make_unique<serving::RequestManager>(*executor_);

        cluster::AvailabilityTrace trace(
            "stable-4", 3600.0,
            {{0.0, cluster::TraceEventKind::Join,
              cluster::InstanceType::Spot, 4}});

        core::SpotServeOptions options;
        options.designArrivalRate = presets::stableRate(spec);
        system_ = presets::spotServeFactory(spec, params, seq, options)(
            *executor_, *fleet_, *requests_);
        fleet_->setListener(system_.get());
        fleet_->loadTrace(trace);

        ingress_ = std::make_unique<serving::SocketIngress>(
            *executor_, *system_, *requests_, ingressOptions());
        ingress_->start();
        ASSERT_GT(ingress_->boundPort(), 0);
        executor_->start();
    }

    virtual serving::SocketIngress::Options ingressOptions() const
    {
        return {};
    }

    void TearDown() override
    {
        // Front door first (no new arrivals), then the driver; the
        // ingress object (observer owner) is destroyed after both.
        if (ingress_)
            ingress_->stop();
        executor_->stop();
    }

    std::unique_ptr<sim::WallClockExecutor> executor_;
    std::unique_ptr<cluster::InstanceManager> fleet_;
    std::unique_ptr<serving::RequestManager> requests_;
    std::unique_ptr<serving::ServingSystem> system_;
    std::unique_ptr<serving::SocketIngress> ingress_;
};

TEST_F(IngressFixture, SingleRequestStreamsTokensThenCompletes)
{
    LineClient client(ingress_->boundPort());
    client.sendLine("gen 512 4");

    const auto lines = client.readUntil("done");
    ASSERT_FALSE(lines.empty());

    // queued precedes everything else this client observes, tokens
    // arrive in order 1..4, and done carries id + latency + restarts.
    EXPECT_EQ(lines.front(), "queued 0");
    std::vector<int> tokens;
    for (const auto &line : lines) {
        std::istringstream in(line);
        std::string verb;
        in >> verb;
        if (verb == "token") {
            long id = -1;
            int n = 0;
            in >> id >> n;
            EXPECT_EQ(id, 0);
            tokens.push_back(n);
        }
    }
    EXPECT_EQ(tokens, (std::vector<int>{1, 2, 3, 4}));

    std::istringstream done(lines.back());
    std::string verb;
    long id = -1;
    double latency = -1.0;
    int restarts = -1;
    done >> verb >> id >> latency >> restarts;
    EXPECT_EQ(verb, "done");
    EXPECT_EQ(id, 0);
    EXPECT_GT(latency, 0.0);
    EXPECT_EQ(restarts, 0);

    EXPECT_EQ(ingress_->requestsInjected(), 1);
    EXPECT_EQ(requests_->completedCount(), 1);
    EXPECT_EQ(requests_->tokensGenerated(), 4.0);
}

TEST_F(IngressFixture, MalformedLinesGetErrorsWithoutKillingTheSession)
{
    LineClient client(ingress_->boundPort());

    client.sendLine("gen -5 4");
    EXPECT_EQ(client.readLine().substr(0, 5), "error");
    client.sendLine("frobnicate 1 2");
    EXPECT_EQ(client.readLine().substr(0, 5), "error");
    client.sendLine("gen 128 2 1"); // cap below output length
    EXPECT_EQ(client.readLine().substr(0, 5), "error");

    // The connection survives protocol errors: a valid request still
    // runs to completion.
    client.sendLine("gen 128 2");
    const auto lines = client.readUntil("done");
    ASSERT_FALSE(lines.empty());
    EXPECT_EQ(lines.back().substr(0, 4), "done");
    EXPECT_GE(ingress_->protocolErrors(), 3);
    EXPECT_EQ(ingress_->requestsInjected(), 1);
}

TEST_F(IngressFixture, PrefixDeclarationsFlowThroughAndBadOnesAreNonFatal)
{
    LineClient client(ingress_->boundPort());

    // Malformed prefix declarations are protocol errors, not
    // disconnects: the session keeps serving afterwards.
    client.sendLine("gen 64 2 prefix=x");
    EXPECT_EQ(client.readLine().substr(0, 5), "error");
    client.sendLine("gen 64 2 prefix=0:-3");
    EXPECT_EQ(client.readLine().substr(0, 5), "error");
    client.sendLine("gen 64 2 prefix=-1:16");
    EXPECT_EQ(client.readLine().substr(0, 5), "error");
    client.sendLine("gen 64 2 prefix=0:16trailing");
    EXPECT_EQ(client.readLine().substr(0, 5), "error");
    EXPECT_GE(ingress_->protocolErrors(), 4);

    // Two classmates declaring the same 32-token prefix: both complete,
    // and the second one's prefill hits the first one's published blocks
    // — proving the declaration crossed the wire into the engine.
    client.sendLine("gen 64 2 prefix=0:32");
    EXPECT_EQ(client.readUntil("done").back().substr(0, 4), "done");
    client.sendLine("gen 64 2 prefix=0:32");
    EXPECT_EQ(client.readUntil("done").back().substr(0, 4), "done");
    auto *base = dynamic_cast<serving::BaseServingSystem *>(system_.get());
    ASSERT_NE(base, nullptr);
    // The stats counters are plain fields owned by the executor thread
    // (boundary commits keep writing them after `done` reaches the
    // wire), so read them on that thread instead of racing it from the
    // test thread — TSan flags the direct read.
    std::promise<long> hitsOnDriver;
    executor_->scheduleAfter(
        0.0, [&] { hitsOnDriver.set_value(base->prefixHitsTotal()); });
    EXPECT_GE(hitsOnDriver.get_future().get(), 1);

    // Bare prefix=<id> declares the whole prompt as the class prefix.
    client.sendLine("gen 64 2 prefix=1");
    EXPECT_EQ(client.readUntil("done").back().substr(0, 4), "done");
    EXPECT_EQ(ingress_->requestsInjected(), 3);
}

TEST_F(IngressFixture, ConcurrentClientsGetTheirOwnStreams)
{
    LineClient a(ingress_->boundPort());
    LineClient b(ingress_->boundPort());
    a.sendLine("gen 512 3");
    b.sendLine("gen 512 3");

    const auto aLines = a.readUntil("done");
    const auto bLines = b.readUntil("done");
    ASSERT_FALSE(aLines.empty());
    ASSERT_FALSE(bLines.empty());

    auto idsSeen = [](const std::vector<std::string> &lines) {
        std::set<long> ids;
        for (const auto &line : lines) {
            std::istringstream in(line);
            std::string verb;
            long id = -1;
            in >> verb >> id;
            ids.insert(id);
        }
        return ids;
    };
    // Every line a client sees is about its own (single) request.
    EXPECT_EQ(idsSeen(aLines).size(), 1u);
    EXPECT_EQ(idsSeen(bLines).size(), 1u);
    EXPECT_NE(*idsSeen(aLines).begin(), *idsSeen(bLines).begin());

    EXPECT_EQ(ingress_->connectionsAccepted(), 2);
    EXPECT_EQ(ingress_->requestsInjected(), 2);
    EXPECT_EQ(requests_->completedCount(), 2);
}

TEST_F(IngressFixture, StopAndDestroyWhileGenerationsDrain)
{
    LineClient client(ingress_->boundPort());
    client.sendLine("gen 512 200");
    EXPECT_EQ(client.readLine().substr(0, 6), "queued");

    // Tear the front door down mid-generation and destroy it.  The
    // executor keeps committing tokens and finally the completion: the
    // observers the ingress registered must by then be detached (or
    // no-op'd by the alive flag), not left dangling into freed memory —
    // the CI sanitizer jobs run this under TSan.
    ingress_->stop();
    ingress_.reset();

    auto completedOnDriver = [this] {
        std::promise<long> done;
        executor_->schedule(executor_->now(), [this, &done] {
            done.set_value(requests_->completedCount());
        });
        return done.get_future().get();
    };
    for (int i = 0; i < 800 && completedOnDriver() < 1; ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
    EXPECT_EQ(completedOnDriver(), 1);
}

/** Same server, but with a deliberately tiny per-client outbox bound. */
class SlowReaderFixture : public IngressFixture
{
  protected:
    serving::SocketIngress::Options ingressOptions() const override
    {
        serving::SocketIngress::Options options;
        options.maxOutboxBytes = 512;
        return options;
    }
};

TEST_F(SlowReaderFixture, SlowReaderIsDisconnectedWithoutStallingTheEngine)
{
    // A client that issues work and then never reads its result stream.
    // The small receive window makes the kernel-side buffering run out
    // quickly; once the bounded outbox overflows too, the ingress must
    // disconnect the client rather than block the executor's driver
    // thread inside send() (the regression this test pins).
    LineClient slow(ingress_->boundPort(), /*rcvbufBytes=*/2048);
    slow.sendLine("gen 512 50");

    // Junk lines each draw an error response, inflating the outbound
    // stream without the test having to wait for generated tokens.
    const std::string wire = std::string(63, 'x') + "\n";
    bool peer_closed = false;
    for (int batch = 0;
         batch < 4000 && !peer_closed && ingress_->clientsDroppedSlow() == 0;
         ++batch) {
        for (int i = 0; i < 100; ++i) {
            if (::send(slow.fd(), wire.data(), wire.size(), MSG_NOSIGNAL) <
                0) {
                peer_closed = true; // already reaped — also a pass
                break;
            }
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    for (int i = 0; i < 200 && ingress_->clientsDroppedSlow() == 0; ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
    EXPECT_EQ(ingress_->clientsDroppedSlow(), 1);

    // The driver thread never parked on the stalled socket: a healthy
    // client still gets served end to end.
    LineClient healthy(ingress_->boundPort());
    healthy.sendLine("gen 128 2");
    const auto lines = healthy.readUntil("done");
    ASSERT_FALSE(lines.empty());
    EXPECT_EQ(lines.back().substr(0, 4), "done");
}

/** Same server, but with a short per-client idle timeout. */
class IdleTimeoutFixture : public IngressFixture
{
  protected:
    serving::SocketIngress::Options ingressOptions() const override
    {
        serving::SocketIngress::Options options;
        options.idleTimeoutMs = 200;
        return options;
    }
};

TEST_F(IdleTimeoutFixture, SilentClientIsReapedAndActiveOneIsNot)
{
    // A connection that never sends a byte must not pin a poll slot
    // forever: after idleTimeoutMs of silence the ingress reaps it and
    // counts it under clientsDroppedIdle().
    LineClient silent(ingress_->boundPort());
    for (int i = 0; i < 200 && ingress_->clientsDroppedIdle() == 0; ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
    EXPECT_EQ(ingress_->clientsDroppedIdle(), 1);

    // Activity resets the clock: a client that keeps talking (well past
    // the timeout in wall time) stays connected through to completion.
    LineClient chatty(ingress_->boundPort());
    chatty.sendLine("gen 128 2");
    const auto lines = chatty.readUntil("done");
    ASSERT_FALSE(lines.empty());
    EXPECT_EQ(lines.back().substr(0, 4), "done");
    EXPECT_EQ(ingress_->clientsDroppedIdle(), 1);
}

} // namespace
} // namespace spotserve
