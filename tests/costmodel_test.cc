/**
 * @file
 * Tests for the analytical cost model: Table 1 calibration, memory
 * feasibility (min-GPU counts), throughput, migration cost, and the
 * configuration space.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "costmodel/config_space.h"
#include "costmodel/latency_model.h"
#include "costmodel/memory_model.h"
#include "costmodel/migration_cost.h"
#include "costmodel/throughput_model.h"
#include "model/model_spec.h"

namespace spotserve::cost {
namespace {

using model::ModelSpec;
using par::ParallelConfig;

const CostParams kParams = CostParams::awsG4dn();
const SeqSpec kSeq{};

/**
 * Table 1 calibration: l_exe(B=1) with S_in=512, S_out=128 at the paper's
 * minimal parallelism must land within 10% of the measured values.
 */
struct Table1Row
{
    const char *name;
    int pp;
    int tp;
    double lexe;
    int minGpus;
};

class Table1Calibration : public ::testing::TestWithParam<Table1Row>
{
  protected:
    static ModelSpec
    specFor(const std::string &name)
    {
        if (name == "OPT-6.7B")
            return ModelSpec::opt6_7b();
        if (name == "GPT-20B")
            return ModelSpec::gpt20b();
        return ModelSpec::llama30b();
    }
};

TEST_P(Table1Calibration, ExecLatencyWithinTenPercent)
{
    const auto row = GetParam();
    const auto spec = specFor(row.name);
    LatencyModel lat(spec, kParams);
    ParallelConfig c{1, row.pp, row.tp, 1};
    const double estimated = lat.execLatency(c, kSeq);
    EXPECT_NEAR(estimated, row.lexe, 0.10 * row.lexe)
        << row.name << " " << c.str();
}

TEST_P(Table1Calibration, MinGpusMatch)
{
    const auto row = GetParam();
    const auto spec = specFor(row.name);
    MemoryModel mem(spec, kParams);
    EXPECT_EQ(mem.minGpus(/*mem_opt_planner=*/true), row.minGpus)
        << row.name;
}

INSTANTIATE_TEST_SUITE_P(
    Table1, Table1Calibration,
    ::testing::Values(Table1Row{"OPT-6.7B", 1, 4, 5.447, 4},
                      Table1Row{"GPT-20B", 3, 4, 14.373, 12},
                      Table1Row{"LLaMA-30B", 2, 8, 17.540, 16}));

TEST(MemoryModelTest, NaivePlannerRaisesGptMinTo16)
{
    // §6.2 ablation: the memory-optimised migration planner reduces the
    // minimum GPUs for GPT-20B from 16 to 12.
    MemoryModel mem(ModelSpec::gpt20b(), kParams);
    EXPECT_EQ(mem.minGpus(true), 12);
    EXPECT_EQ(mem.minGpus(false), 16);
}

TEST(MemoryModelTest, SteadyBytesDecomposition)
{
    MemoryModel mem(ModelSpec::gpt20b(), kParams);
    ParallelConfig c{1, 3, 4, 8};
    EXPECT_DOUBLE_EQ(mem.steadyBytes(c, kSeq),
                     mem.weightShardBytes(c) + mem.kvCacheBytes(c, kSeq) +
                         kParams.workspaceBytes);
    // GPT-20B's 44 layers at P = 3 put ceil(44/3) = 15 layers on the
    // bottleneck stage: the binding GPU holds 15 layers' weights sharded
    // M = 4 ways, NOT the W/(P*M) = W/12 average (which under-counts it).
    EXPECT_NEAR(mem.weightShardBytes(c),
                ModelSpec::gpt20b().layerWeightBytes() * 15 / 4, 1.0);
    EXPECT_GT(mem.weightShardBytes(c),
              ModelSpec::gpt20b().totalWeightBytes() / 12);
}

TEST(MemoryModelTest, BottleneckStageSizingWhenLayersDontDivide)
{
    // For every config with L % P != 0 the per-GPU accounting must size
    // the largest stage (ceil(L/P) layers); with L % P == 0 it must
    // reduce exactly to the uniform W/(P*M) split.  The satellite
    // acceptance check: the bottleneck stage's modeled bytes fit the GPU
    // line for every config the budget calls feasible.
    for (const auto &spec :
         {ModelSpec::opt6_7b(), ModelSpec::gpt20b(), ModelSpec::llama30b()}) {
        MemoryModel mem(spec, kParams);
        for (int pp : {1, 2, 3, 4, 6, 8}) {
            if (spec.numLayers() < pp)
                continue;
            for (int tp : {1, 2, 4, 8}) {
                const ParallelConfig c{1, pp, tp, 8};
                const int bottleneck = (spec.numLayers() + pp - 1) / pp;
                EXPECT_NEAR(mem.weightShardBytes(c),
                            spec.layerWeightBytes() * bottleneck / tp, 1.0)
                    << spec.name() << " " << c.str();
                if (spec.numLayers() % pp == 0) {
                    EXPECT_NEAR(mem.weightShardBytes(c),
                                spec.totalWeightBytes() / (pp * tp), 1.0)
                        << spec.name() << " " << c.str();
                } else {
                    EXPECT_GT(mem.weightShardBytes(c),
                              spec.totalWeightBytes() / (pp * tp))
                        << spec.name() << " " << c.str();
                }
                // KV per token scales with the same bottleneck layers.
                EXPECT_NEAR(mem.kvCacheBytes(c, kSeq),
                            c.batch * spec.kvBytesPerTokenPerLayer() *
                                bottleneck *
                                (kSeq.inputLen + kSeq.outputLen) / tp,
                            1.0)
                    << spec.name() << " " << c.str();
                // Acceptance: wherever the budget is positive, the
                // bottleneck stage's modeled bytes at that budget fit
                // the per-GPU memory line.
                const long budget = mem.kvBudgetTokens(c);
                if (budget > 0) {
                    const double kv_bytes =
                        static_cast<double>(budget) *
                        spec.kvBytesPerTokenPerLayer() * bottleneck / tp;
                    EXPECT_LE(mem.weightShardBytes(c) + kv_bytes +
                                  kParams.workspaceBytes +
                                  mem.migrationReserveBytes(c, true),
                              kParams.gpu.memBytes * (1.0 + 1e-9))
                        << spec.name() << " " << c.str();
                }
            }
        }
    }
}

TEST(MemoryModelTest, KvBudgetBlocksFloorsToWholeBlocks)
{
    MemoryModel mem(ModelSpec::opt6_7b(), kParams);
    const ParallelConfig c{1, 2, 2, 8};
    const long tokens = mem.kvBudgetTokens(c);
    ASSERT_GT(tokens, 0);
    // blockTokens = 1 reproduces the token budget exactly.
    EXPECT_EQ(mem.kvBudgetBlocks(c, 1), tokens);
    for (int blk : {8, 16, 64}) {
        const long blocks = mem.kvBudgetBlocks(c, blk);
        // Floor, never round up: whole blocks only...
        EXPECT_EQ(blocks, tokens / blk) << "blk " << blk;
        // ...so the block budget never promises more tokens than exist.
        EXPECT_LE(blocks * static_cast<long>(blk), tokens) << "blk " << blk;
    }
    EXPECT_THROW(mem.kvBudgetBlocks(c, 0), std::invalid_argument);
}

TEST(MemoryModelTest, WatermarkOrderingInvariant)
{
    // deriveKvWatermarks must keep low < high <= budget for every
    // budget > 1 (the old double max(1, ...) clamp collapsed both onto
    // 1 on tiny budgets, erasing hysteresis so eviction could thrash at
    // every boundary), and block-denominated watermarks follow the
    // block budget.
    for (long budget : {2L, 3L, 5L, 9L, 10L, 17L, 64L, 1500L, 100000L}) {
        for (int slots : {1, 4, 8, 64}) {
            const auto wm = deriveKvWatermarks(budget, slots);
            EXPECT_LT(wm.low, wm.high)
                << "budget " << budget << " slots " << slots;
            EXPECT_LE(wm.high, budget)
                << "budget " << budget << " slots " << slots;
            EXPECT_GE(wm.low, 1) << "budget " << budget;
        }
    }
    EXPECT_EQ(deriveKvWatermarks(1, 8).high, 1);
    EXPECT_EQ(deriveKvWatermarks(1, 8).low, 1);
    EXPECT_EQ(deriveKvWatermarks(0, 8).high, 0);
    // Large budgets keep the PR 3 values (margin = budget/16, gap =
    // budget/8): the fix only touches the degenerate small-budget cases.
    const auto wm = deriveKvWatermarks(1500, 8);
    EXPECT_EQ(wm.high, 1407);
    EXPECT_EQ(wm.low, 1220);
    // Block-denominated watermarks derive from the block budget.
    MemoryModel mem(ModelSpec::opt6_7b(), kParams);
    const ParallelConfig c{1, 2, 2, 8};
    const auto blockWm = mem.kvWatermarks(c, /*block_tokens=*/16);
    const auto expect = deriveKvWatermarks(mem.kvBudgetBlocks(c, 16), c.batch);
    EXPECT_EQ(blockWm.high, expect.high);
    EXPECT_EQ(blockWm.low, expect.low);
}

TEST(MemoryModelTest, KvScalesWithBatch)
{
    MemoryModel mem(ModelSpec::opt6_7b(), kParams);
    ParallelConfig b1{1, 1, 4, 1};
    ParallelConfig b8{1, 1, 4, 8};
    EXPECT_NEAR(mem.kvCacheBytes(b8, kSeq), 8 * mem.kvCacheBytes(b1, kSeq),
                1.0);
}

TEST(MemoryModelTest, MigrationReserve)
{
    MemoryModel mem(ModelSpec::gpt20b(), kParams);
    ParallelConfig c{1, 3, 4, 1};
    EXPECT_DOUBLE_EQ(mem.migrationReserveBytes(c, true),
                     kParams.migrationBufferBytes);
    EXPECT_DOUBLE_EQ(mem.migrationReserveBytes(c, false),
                     mem.weightShardBytes(c));
}

TEST(LatencyModelTest, DecodeMonotoneInContext)
{
    LatencyModel lat(ModelSpec::gpt20b(), kParams);
    ParallelConfig c{1, 2, 8, 4};
    double prev = 0.0;
    for (int ctx : {1, 128, 512, 640, 2048}) {
        const double t = lat.decodeIterTime(c, ctx);
        EXPECT_GT(t, prev);
        prev = t;
    }
}

TEST(LatencyModelTest, DecodeSlowerWithBiggerBatch)
{
    LatencyModel lat(ModelSpec::gpt20b(), kParams);
    for (int b = 2; b <= 8; b *= 2) {
        ParallelConfig small{1, 2, 8, b / 2};
        ParallelConfig big{1, 2, 8, b};
        EXPECT_GT(lat.decodeIterTime(big, 512),
                  lat.decodeIterTime(small, 512));
    }
}

TEST(LatencyModelTest, MoreShardsFasterPerIteration)
{
    // More tensor shards split the weight traffic (despite the
    // over-sharding penalty, the net effect on T4s is positive).
    LatencyModel lat(ModelSpec::gpt20b(), kParams);
    EXPECT_GT(lat.decodeIterTime(ParallelConfig{1, 2, 2, 1}, 512),
              lat.decodeIterTime(ParallelConfig{1, 2, 4, 1}, 512));
    EXPECT_GT(lat.decodeIterTime(ParallelConfig{1, 2, 4, 1}, 512),
              lat.decodeIterTime(ParallelConfig{1, 2, 8, 1}, 512));
}

TEST(LatencyModelTest, ShardingEfficiencyDecreases)
{
    LatencyModel lat(ModelSpec::opt6_7b(), kParams);
    EXPECT_GT(lat.memEfficiency(1), lat.memEfficiency(2));
    EXPECT_GT(lat.memEfficiency(2), lat.memEfficiency(4));
    EXPECT_GT(lat.memEfficiency(4), lat.memEfficiency(8));
    EXPECT_THROW(lat.memEfficiency(0), std::invalid_argument);
}

TEST(LatencyModelTest, AllReduceProperties)
{
    LatencyModel lat(ModelSpec::opt6_7b(), kParams);
    EXPECT_DOUBLE_EQ(lat.allReduceTime(1, 1e6), 0.0);
    // Crossing instances costs more than staying inside one.
    EXPECT_GT(lat.allReduceTime(8, 8192), lat.allReduceTime(4, 8192));
    // More bytes cost more.
    EXPECT_GT(lat.allReduceTime(4, 1e8), lat.allReduceTime(4, 1e3));
}

TEST(LatencyModelTest, ExecLatencyDecomposes)
{
    LatencyModel lat(ModelSpec::opt6_7b(), kParams);
    ParallelConfig c{1, 1, 4, 1};
    const double total = lat.execLatency(c, kSeq);
    const double manual = lat.prefillTime(c, kSeq.inputLen) +
                          lat.decodeSpanTime(c, kSeq.inputLen + 1,
                                             kSeq.outputLen);
    EXPECT_NEAR(total, manual, 1e-9);
}

TEST(LatencyModelTest, DecodeSpanMatchesIterationSum)
{
    LatencyModel lat(ModelSpec::opt6_7b(), kParams);
    ParallelConfig c{1, 1, 4, 2};
    double manual = 0.0;
    for (int k = 0; k < 16; ++k)
        manual += lat.decodeIterTime(c, 513 + k);
    EXPECT_NEAR(lat.decodeSpanTime(c, 513, 16), manual, 1e-9);
    EXPECT_DOUBLE_EQ(lat.decodeSpanTime(c, 513, 0), 0.0);
}

TEST(LatencyModelTest, ColdLoadDominatedByDisk)
{
    LatencyModel lat(ModelSpec::gpt20b(), kParams);
    ParallelConfig c{2, 2, 8, 8};
    const double per_gpu =
        ModelSpec::gpt20b().totalWeightBytes() / c.gpusPerPipeline();
    const double expected = kParams.engineRestartTime +
                            per_gpu * kParams.gpusPerInstance /
                                kParams.diskBandwidth;
    EXPECT_NEAR(lat.coldLoadTime(c), expected, 1e-6);
}

TEST(ThroughputModelTest, ScalesWithReplicas)
{
    LatencyModel lat(ModelSpec::gpt20b(), kParams);
    ThroughputModel thr(lat);
    ParallelConfig one{1, 2, 8, 8};
    ParallelConfig two{2, 2, 8, 8};
    EXPECT_NEAR(thr.throughput(two, kSeq), 2.0 * thr.throughput(one, kSeq),
                1e-9);
}

TEST(ThroughputModelTest, SinglePipelineCannotSustainPaperRates)
{
    // The crossover the paper leans on: one pipeline of GPT-20B at B=8 is
    // overwhelmed by 0.35 req/s with CV-6 burstiness (l_sch explodes),
    // and one LLaMA-30B pipeline sits near its limit at 0.2 req/s.
    LatencyModel gpt(ModelSpec::gpt20b(), kParams);
    ThroughputModel thr(gpt);
    ParallelConfig one{1, 2, 8, 8};
    const double phi = thr.throughput(one, kSeq);
    EXPECT_GT(phi, 0.2);  // close to the arrival rate ...
    EXPECT_LT(phi, 0.35); // ... but not enough: requests stack (§6.2)
    EXPECT_GT(thr.schedulingDelay(one, kSeq, 0.35, 6.0), 30.0);
}

TEST(ThroughputModelTest, OverloadGivesInfiniteDelay)
{
    LatencyModel lat(ModelSpec::gpt20b(), kParams);
    ThroughputModel thr(lat);
    ParallelConfig c{1, 2, 8, 1};
    EXPECT_TRUE(std::isinf(thr.schedulingDelay(c, kSeq, 10.0, 6.0)));
    EXPECT_DOUBLE_EQ(thr.schedulingDelay(c, kSeq, 0.0, 6.0), 0.0);
}

TEST(MigrationCostTest, BottleneckIsBusiestPort)
{
    MigrationCostModel m(kParams);
    // Two disjoint pairs move in parallel; one pair moves twice as much.
    std::vector<Transfer> ts = {{0, 1, 10e9}, {2, 3, 20e9}};
    const double expected =
        kParams.migrationSetupTime + 20e9 / kParams.interBandwidth;
    EXPECT_NEAR(m.transferTime(ts), expected, 1e-9);
}

TEST(MigrationCostTest, IngressAggregatesAcrossSenders)
{
    MigrationCostModel m(kParams);
    std::vector<Transfer> ts = {{0, 2, 10e9}, {1, 2, 10e9}};
    const double expected =
        kParams.migrationSetupTime + 20e9 / kParams.interBandwidth;
    EXPECT_NEAR(m.transferTime(ts), expected, 1e-9);
}

TEST(MigrationCostTest, IntraInstanceUsesPcie)
{
    MigrationCostModel m(kParams);
    std::vector<Transfer> ts = {{0, 0, 16e9}};
    EXPECT_NEAR(m.transferTime(ts),
                kParams.migrationSetupTime + 16e9 / kParams.intraBandwidth,
                1e-9);
    EXPECT_DOUBLE_EQ(MigrationCostModel::intraInstanceBytes(ts), 16e9);
    EXPECT_DOUBLE_EQ(MigrationCostModel::interInstanceBytes(ts), 0.0);
}

TEST(MigrationCostTest, EmptyIsFree)
{
    MigrationCostModel m(kParams);
    EXPECT_DOUBLE_EQ(m.transferTime({}), 0.0);
}

TEST(ConfigSpaceTest, EnumerationRespectsBudget)
{
    ConfigSpace space(ModelSpec::gpt20b(), kParams, kSeq);
    for (int n : {1, 2, 3, 6, 12}) {
        for (const auto &c : space.enumerate(n)) {
            EXPECT_LE(space.instancesNeeded(c), n) << c.str();
            EXPECT_TRUE(space.feasible(c)) << c.str();
        }
    }
}

TEST(ConfigSpaceTest, EnumerateIsTheSingleEntryPoint)
{
    // enumerate(n) is the one documented enumeration path (the former
    // enumerateUpTo alias was only correct because enumerate filters by
    // instancesNeeded(c) <= n).  Pin the contract both ways: nothing over
    // budget leaks out, and enumerate(m) for a smaller budget m is
    // exactly enumerate(n) filtered to instancesNeeded <= m — so callers
    // that pass an upper bound (Algorithm 1 lines 2-3) see every config a
    // larger fleet could host, no more and no less.
    ConfigSpace space(ModelSpec::opt6_7b(), kParams, kSeq);
    const auto all = space.enumerate(12);
    ASSERT_FALSE(all.empty());
    for (int m : {1, 2, 3, 6, 12}) {
        std::vector<ParallelConfig> filtered;
        for (const auto &c : all) {
            if (space.instancesNeeded(c) <= m)
                filtered.push_back(c);
        }
        const auto direct = space.enumerate(m);
        ASSERT_EQ(direct.size(), filtered.size()) << "m=" << m;
        for (std::size_t i = 0; i < direct.size(); ++i)
            EXPECT_EQ(direct[i], filtered[i]) << "m=" << m << " i=" << i;
    }
}

TEST(ConfigSpaceTest, GptNeedsThreeInstances)
{
    ConfigSpace space(ModelSpec::gpt20b(), kParams, kSeq);
    EXPECT_TRUE(space.enumerate(2).empty());
    EXPECT_FALSE(space.enumerate(3).empty());
}

TEST(ConfigSpaceTest, InstancesNeededPacking)
{
    ConfigSpace space(ModelSpec::gpt20b(), kParams, kSeq);
    // (D=2, P=2, M=8): each stage group takes 2 whole instances.
    EXPECT_EQ(space.instancesNeeded(ParallelConfig{2, 2, 8, 8}), 8);
    // (D=1, P=3, M=4): 12 GPUs tile 3 instances.
    EXPECT_EQ(space.instancesNeeded(ParallelConfig{1, 3, 4, 8}), 3);
    // (D=3, P=1, M=1): 3 GPUs share one instance.
    EXPECT_EQ(space.instancesNeeded(ParallelConfig{3, 1, 1, 1}), 1);
}

TEST(ConfigSpaceTest, PaperConfigsAreFeasible)
{
    ConfigSpace gpt(ModelSpec::gpt20b(), kParams, kSeq);
    EXPECT_TRUE(gpt.feasible(ParallelConfig{2, 2, 8, 8}));
    EXPECT_TRUE(gpt.feasible(ParallelConfig{3, 3, 4, 8}));
    EXPECT_TRUE(gpt.feasible(ParallelConfig{2, 3, 4, 8}));
    ConfigSpace llama(ModelSpec::llama30b(), kParams, kSeq);
    EXPECT_TRUE(llama.feasible(ParallelConfig{1, 2, 8, 8}));
    EXPECT_FALSE(llama.feasible(ParallelConfig{1, 1, 4, 1})); // OOM
}

TEST(ConfigSpaceTest, NaivePlannerShrinksSpace)
{
    ConfigSpaceOptions naive;
    naive.memOptPlanner = false;
    ConfigSpace with(ModelSpec::gpt20b(), kParams, kSeq);
    ConfigSpace without(ModelSpec::gpt20b(), kParams, kSeq, naive);
    EXPECT_GT(with.enumerate(12).size(), without.enumerate(12).size());
    EXPECT_FALSE(without.feasible(ParallelConfig{1, 3, 4, 1}));
    EXPECT_TRUE(with.feasible(ParallelConfig{1, 3, 4, 1}));
}

TEST(ConfigSpaceTest, RejectsUnpackableTensorGroups)
{
    ConfigSpaceOptions opt;
    opt.tpChoices = {1, 2, 3, 4, 8};
    ConfigSpace space(ModelSpec::opt6_7b(), kParams, kSeq, opt);
    // M=3 does not divide the 4 GPUs of an instance.
    EXPECT_FALSE(space.feasible(ParallelConfig{1, 2, 3, 1}));
}

} // namespace
} // namespace spotserve::cost
