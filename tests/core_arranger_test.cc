/**
 * @file
 * Tests for the interruption arranger (JIT arrangement, §4.1).
 */

#include <gtest/gtest.h>

#include "core/interruption_arranger.h"
#include "model/model_spec.h"

namespace spotserve::core {
namespace {

const cost::CostParams kParams = cost::CostParams::awsG4dn();

class ArrangerFixture : public ::testing::Test
{
  protected:
    model::ModelSpec spec = model::ModelSpec::gpt20b();
    cost::LatencyModel latency{spec, kParams};
    InterruptionArranger arranger{latency};
    par::ParallelConfig cfg{1, 2, 8, 8};
};

TEST_F(ArrangerFixture, MaximalIterationsWithinGrace)
{
    const double t_mig = 5.0;
    const double grace = 15.0;
    const auto a =
        arranger.arrangeForPreemption(cfg, 560, 128, 100.0, grace, t_mig);
    ASSERT_GT(a.iterations, 0);
    // The arranged span plus one in-flight iteration fits the budget...
    const double span =
        latency.decodeSpanTime(cfg, 560, a.iterations) +
        latency.decodeIterTime(cfg, 560);
    EXPECT_LT(span, grace - t_mig);
    // ... and one more iteration would not (maximality).
    const double span_plus =
        latency.decodeSpanTime(cfg, 560, a.iterations + 1) +
        latency.decodeIterTime(cfg, 560);
    EXPECT_GE(span_plus, grace - t_mig);
}

TEST_F(ArrangerFixture, NoBudgetMeansNoIterations)
{
    const auto a =
        arranger.arrangeForPreemption(cfg, 560, 80, 100.0, 4.0, 5.0);
    EXPECT_EQ(a.iterations, 0);
}

TEST_F(ArrangerFixture, CappedByRemainingTokens)
{
    const auto a =
        arranger.arrangeForPreemption(cfg, 560, 3, 100.0, 300.0, 1.0);
    EXPECT_EQ(a.iterations, 3);
}

TEST_F(ArrangerFixture, CacheMigrationGuard)
{
    // T_mig must be smaller than the execution time of the committed
    // progress, otherwise rerouting (recompute) is cheaper (§4.1).
    const auto keep =
        arranger.arrangeForPreemption(cfg, 560, 80, 100.0, 30.0, 5.0);
    EXPECT_TRUE(keep.migrateCache);
    const auto drop =
        arranger.arrangeForPreemption(cfg, 560, 80, 2.0, 30.0, 5.0);
    EXPECT_FALSE(drop.migrateCache);
}

TEST_F(ArrangerFixture, AcquisitionMinimizesIterations)
{
    // Smallest S whose execution covers the remaining lead time.
    const double lead = 10.0;
    const auto a =
        arranger.arrangeForAcquisition(cfg, 560, 128, 100.0, lead, 1.0);
    ASSERT_GT(a.iterations, 0);
    EXPECT_GE(latency.decodeSpanTime(cfg, 560, a.iterations), lead);
    EXPECT_LT(latency.decodeSpanTime(cfg, 560, a.iterations - 1), lead);
}

TEST_F(ArrangerFixture, AcquisitionZeroLeadStopsNow)
{
    const auto a =
        arranger.arrangeForAcquisition(cfg, 560, 128, 100.0, 0.0, 1.0);
    EXPECT_EQ(a.iterations, 0);
}

TEST_F(ArrangerFixture, RecomputeTimeMatchesModel)
{
    const double t = arranger.recomputeTime(cfg, 512, 50);
    EXPECT_NEAR(t,
                latency.prefillTime(cfg, 512) +
                    latency.decodeSpanTime(cfg, 513, 50),
                1e-9);
    EXPECT_DOUBLE_EQ(arranger.recomputeTime(cfg, 512, 0), 0.0);
}

TEST_F(ArrangerFixture, MoreGraceMoreIterations)
{
    int prev = -1;
    for (double grace : {6.0, 10.0, 20.0, 30.0}) {
        const auto a =
            arranger.arrangeForPreemption(cfg, 560, 128, 100.0, grace, 5.0);
        EXPECT_GE(a.iterations, prev);
        prev = a.iterations;
    }
}

} // namespace
} // namespace spotserve::core
