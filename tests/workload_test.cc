/**
 * @file
 * Tests for workload generation: Gamma arrivals, fluctuating rates, MAF
 * trace.
 */

#include <gtest/gtest.h>

#include "simcore/stats.h"
#include "workload/maf_trace.h"
#include "workload/workload.h"

namespace spotserve::wl {
namespace {

const cost::SeqSpec kSeq{};

TEST(WorkloadTest, StationaryGammaHitsRate)
{
    sim::Rng rng(3);
    const auto w = stationaryGamma(1.5, 6.0, 20000.0, kSeq, rng);
    EXPECT_NEAR(meanRate(w, 20000.0), 1.5, 0.15);
}

TEST(WorkloadTest, ArrivalsSortedWithIdsAndLengths)
{
    sim::Rng rng(4);
    const auto w = stationaryGamma(0.5, 6.0, 2000.0, kSeq, rng);
    ASSERT_FALSE(w.empty());
    for (std::size_t i = 0; i < w.size(); ++i) {
        EXPECT_EQ(w[i].id, static_cast<RequestId>(i));
        EXPECT_EQ(w[i].inputLen, 512);
        EXPECT_EQ(w[i].outputLen, 128);
        if (i > 0) {
            EXPECT_GE(w[i].arrival, w[i - 1].arrival);
        }
        EXPECT_LT(w[i].arrival, 2000.0);
    }
}

TEST(WorkloadTest, GammaCv6IsBurstier)
{
    sim::Rng rng_a(5), rng_b(5);
    const auto bursty = stationaryGamma(1.0, 6.0, 50000.0, kSeq, rng_a);
    const auto smooth = stationaryPoisson(1.0, 50000.0, kSeq, rng_b);
    // Compare squared-CV of inter-arrival gaps.
    auto cv = [](const Workload &w) {
        sim::RunningStat s;
        for (std::size_t i = 1; i < w.size(); ++i)
            s.add(w[i].arrival - w[i - 1].arrival);
        return s.cv();
    };
    EXPECT_GT(cv(bursty), 3.0);
    EXPECT_NEAR(cv(smooth), 1.0, 0.15);
}

TEST(WorkloadTest, DeterministicPerSeed)
{
    sim::Rng a(9), b(9), c(10);
    const auto wa = stationaryGamma(1.0, 6.0, 1000.0, kSeq, a);
    const auto wb = stationaryGamma(1.0, 6.0, 1000.0, kSeq, b);
    const auto wc = stationaryGamma(1.0, 6.0, 1000.0, kSeq, c);
    ASSERT_EQ(wa.size(), wb.size());
    for (std::size_t i = 0; i < wa.size(); ++i)
        EXPECT_DOUBLE_EQ(wa[i].arrival, wb[i].arrival);
    EXPECT_NE(wa.size(), wc.size());
}

TEST(WorkloadTest, FluctuatingFollowsRateFunction)
{
    sim::Rng rng(6);
    auto rate = [](sim::SimTime t) { return t < 5000.0 ? 0.5 : 2.0; };
    const auto w = fluctuating(rate, 1.0, 10000.0, kSeq, rng);
    long early = 0, late = 0;
    for (const auto &r : w)
        (r.arrival < 5000.0 ? early : late) += 1;
    EXPECT_NEAR(early / 5000.0, 0.5, 0.1);
    EXPECT_NEAR(late / 5000.0, 2.0, 0.3);
}

TEST(WorkloadTest, DefaultRatesMatchPaper)
{
    EXPECT_DOUBLE_EQ(defaultRateForModel("OPT-6.7B"), 1.5);
    EXPECT_DOUBLE_EQ(defaultRateForModel("GPT-20B"), 0.35);
    EXPECT_DOUBLE_EQ(defaultRateForModel("LLaMA-30B"), 0.2);
    EXPECT_THROW(defaultRateForModel("GPT-5"), std::invalid_argument);
}

TEST(MafTraceTest, Fig8SegmentShape)
{
    const auto maf = MafTrace::fig8Segment();
    EXPECT_DOUBLE_EQ(maf.duration(), 1080.0);
    // Stable start below capacity; burst peaks past the (2,2,8) capacity
    // region around t = 270-600 s; decay afterwards (§6.3).
    EXPECT_NEAR(maf.rateAt(0.0), 0.55, 1e-9);
    EXPECT_GT(maf.peakRate(), 0.9);
    EXPECT_GT(maf.rateAt(400.0), 0.85);
    EXPECT_LT(maf.rateAt(700.0), 0.7);
    EXPECT_LT(maf.rateAt(1079.0), 0.6);
    // Clamps beyond the end.
    EXPECT_DOUBLE_EQ(maf.rateAt(5000.0), maf.rates().back());
}

TEST(MafTraceTest, RescalingIsLinear)
{
    const auto maf = MafTrace::fig8Segment();
    const auto scaled = maf.rescaled(2.0);
    EXPECT_DOUBLE_EQ(scaled.peakRate(), 2.0 * maf.peakRate());
    EXPECT_DOUBLE_EQ(scaled.meanRate(), 2.0 * maf.meanRate());
    const auto to_peak = maf.rescaledToPeak(0.7);
    EXPECT_NEAR(to_peak.peakRate(), 0.7, 1e-12);
}

TEST(MafTraceTest, Validation)
{
    EXPECT_THROW(MafTrace({}, 60.0), std::invalid_argument);
    EXPECT_THROW(MafTrace({1.0}, 0.0), std::invalid_argument);
    EXPECT_THROW(MafTrace({1.0, -1.0}, 60.0), std::invalid_argument);
    EXPECT_THROW(MafTrace::fig8Segment().rescaled(0.0),
                 std::invalid_argument);
}

} // namespace
} // namespace spotserve::wl
