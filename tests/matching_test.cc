/**
 * @file
 * Tests for the Kuhn-Munkres matcher, including randomized comparison
 * against the exponential brute-force reference.
 */

#include <gtest/gtest.h>

#include "matching/hungarian.h"
#include "simcore/rng.h"

namespace spotserve::match {
namespace {

TEST(HungarianTest, TrivialSingleton)
{
    const auto a = maxWeightAssignment({{5.0}});
    EXPECT_EQ(a.rowToCol, (std::vector<int>{0}));
    EXPECT_DOUBLE_EQ(a.totalWeight, 5.0);
}

TEST(HungarianTest, PicksDiagonalWhenOptimal)
{
    Matrix w = {{10, 1, 1}, {1, 10, 1}, {1, 1, 10}};
    const auto a = maxWeightAssignment(w);
    EXPECT_EQ(a.rowToCol, (std::vector<int>{0, 1, 2}));
    EXPECT_DOUBLE_EQ(a.totalWeight, 30.0);
}

TEST(HungarianTest, AvoidsGreedyTrap)
{
    // Greedy would match row0->col0 (9) forcing row1->col1 (1), total 10;
    // optimal is 8 + 8 = 16.
    Matrix w = {{9, 8}, {8, 1}};
    const auto a = maxWeightAssignment(w);
    EXPECT_DOUBLE_EQ(a.totalWeight, 16.0);
    EXPECT_EQ(a.rowToCol, (std::vector<int>{1, 0}));
}

TEST(HungarianTest, RectangularWideMatchesAllRows)
{
    Matrix w = {{1, 5, 2, 0}, {5, 1, 0, 2}};
    const auto a = maxWeightAssignment(w);
    EXPECT_EQ(a.rowToCol.size(), 2u);
    EXPECT_DOUBLE_EQ(a.totalWeight, 10.0);
}

TEST(HungarianTest, RectangularTallLeavesRowsUnmatched)
{
    Matrix w = {{5}, {7}, {6}};
    const auto a = maxWeightAssignment(w);
    EXPECT_DOUBLE_EQ(a.totalWeight, 7.0);
    EXPECT_EQ(a.rowToCol[1], 0);
    EXPECT_EQ(a.rowToCol[0], -1);
    EXPECT_EQ(a.rowToCol[2], -1);
}

TEST(HungarianTest, HandlesNegativeWeights)
{
    Matrix w = {{-1, -5}, {-5, -1}};
    const auto a = maxWeightAssignment(w);
    EXPECT_DOUBLE_EQ(a.totalWeight, -2.0);
}

TEST(HungarianTest, MinCostIsDualOfMaxWeight)
{
    Matrix c = {{4, 1, 3}, {2, 0, 5}, {3, 2, 2}};
    const auto a = minCostAssignment(c);
    EXPECT_DOUBLE_EQ(a.totalWeight, 5.0); // 1 + 2 + 2
}

TEST(HungarianTest, ColToRowInvertsMapping)
{
    Matrix w = {{10, 1, 1}, {1, 1, 10}};
    const auto a = maxWeightAssignment(w);
    const auto inv = a.colToRow(3);
    EXPECT_EQ(inv[0], 0);
    EXPECT_EQ(inv[2], 1);
    EXPECT_EQ(inv[1], -1);
}

TEST(HungarianTest, EmptyMatrix)
{
    const auto a = maxWeightAssignment({});
    EXPECT_TRUE(a.rowToCol.empty());
    EXPECT_DOUBLE_EQ(a.totalWeight, 0.0);
}

TEST(HungarianTest, RejectsRaggedAndNonFinite)
{
    EXPECT_THROW(maxWeightAssignment({{1.0, 2.0}, {1.0}}),
                 std::invalid_argument);
    EXPECT_THROW(
        maxWeightAssignment({{std::numeric_limits<double>::infinity()}}),
        std::invalid_argument);
}

TEST(HungarianTest, DeterministicOnTies)
{
    Matrix w = {{1, 1}, {1, 1}};
    const auto a = maxWeightAssignment(w);
    const auto b = maxWeightAssignment(w);
    EXPECT_EQ(a.rowToCol, b.rowToCol);
    EXPECT_DOUBLE_EQ(a.totalWeight, 2.0);
}

TEST(BruteForceTest, RefusesLargeInstances)
{
    Matrix w(10, std::vector<double>(10, 1.0));
    EXPECT_THROW(bruteForceMaxWeight(w), std::invalid_argument);
}

/** Randomized optimality property: KM == brute force on small instances. */
class KmVsBruteForce
    : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(KmVsBruteForce, TotalWeightOptimal)
{
    const auto [rows, cols] = GetParam();
    sim::Rng rng(1000 + rows * 17 + cols);
    for (int trial = 0; trial < 40; ++trial) {
        Matrix w(rows, std::vector<double>(cols));
        for (auto &row : w) {
            for (auto &v : row)
                v = rng.uniform(-10.0, 10.0);
        }
        const auto km = maxWeightAssignment(w);
        const auto bf = bruteForceMaxWeight(w);
        EXPECT_NEAR(km.totalWeight, bf.totalWeight, 1e-9)
            << "rows=" << rows << " cols=" << cols << " trial=" << trial;

        // The reported total must equal the sum of matched entries.
        double sum = 0.0;
        int matched = 0;
        for (int i = 0; i < rows; ++i) {
            if (km.rowToCol[i] >= 0) {
                sum += w[i][km.rowToCol[i]];
                ++matched;
            }
        }
        EXPECT_NEAR(sum, km.totalWeight, 1e-9);
        EXPECT_EQ(matched, std::min(rows, cols));

        // No column used twice.
        std::vector<int> used(cols, 0);
        for (int i = 0; i < rows; ++i) {
            if (km.rowToCol[i] >= 0)
                ++used[km.rowToCol[i]];
        }
        for (int c : used)
            EXPECT_LE(c, 1);
    }
}

INSTANTIATE_TEST_SUITE_P(
    ShapeSweep, KmVsBruteForce,
    ::testing::Values(std::make_pair(2, 2), std::make_pair(3, 3),
                      std::make_pair(4, 4), std::make_pair(5, 5),
                      std::make_pair(3, 6), std::make_pair(6, 3),
                      std::make_pair(2, 7), std::make_pair(7, 2),
                      std::make_pair(4, 8), std::make_pair(8, 4)));

TEST(HungarianTest, LargeInstanceRuns)
{
    sim::Rng rng(5);
    const int n = 64;
    Matrix w(n, std::vector<double>(n));
    for (auto &row : w) {
        for (auto &v : row)
            v = rng.uniform(0.0, 1e9);
    }
    const auto a = maxWeightAssignment(w);
    // Perfect matching, all distinct.
    std::vector<int> used(n, 0);
    for (int i = 0; i < n; ++i) {
        ASSERT_GE(a.rowToCol[i], 0);
        ++used[a.rowToCol[i]];
    }
    for (int c : used)
        EXPECT_EQ(c, 1);
    // At least as good as the identity assignment.
    double identity = 0.0;
    for (int i = 0; i < n; ++i)
        identity += w[i][i];
    EXPECT_GE(a.totalWeight, identity);
}

} // namespace
} // namespace spotserve::match
