/**
 * @file
 * Tests for the LLM model specifications (Table 1 sizing).
 */

#include <gtest/gtest.h>

#include "model/model_spec.h"

namespace spotserve::model {
namespace {

TEST(ModelSpecTest, Opt67bMatchesTable1Size)
{
    const auto m = ModelSpec::opt6_7b();
    EXPECT_EQ(m.name(), "OPT-6.7B");
    // Table 1: 25.0 GiB of fp32 weights.
    EXPECT_NEAR(m.totalWeightBytes() / kGiB, 25.0, 0.1);
    EXPECT_EQ(m.numLayers(), 32);
    EXPECT_EQ(m.hiddenDim(), 4096);
}

TEST(ModelSpecTest, Gpt20bMatchesTable1Size)
{
    const auto m = ModelSpec::gpt20b();
    EXPECT_NEAR(m.totalWeightBytes() / kGiB, 74.5, 0.1);
    EXPECT_EQ(m.numLayers(), 44);
}

TEST(ModelSpecTest, Llama30bMatchesTable1Size)
{
    const auto m = ModelSpec::llama30b();
    EXPECT_NEAR(m.totalWeightBytes() / kGiB, 111.8, 0.2);
    EXPECT_EQ(m.numLayers(), 60);
}

TEST(ModelSpecTest, LayerBytesSumToTotal)
{
    for (const auto &m : {ModelSpec::opt6_7b(), ModelSpec::gpt20b(),
                          ModelSpec::llama30b()}) {
        EXPECT_NEAR(m.layerWeightBytes() * m.numLayers(),
                    m.totalWeightBytes(), 1.0);
    }
}

TEST(ModelSpecTest, KvBytesMatchVllmFigure)
{
    // §2.1 cites 1.7 GB of KV per sequence for LLaMA-13B (h=5120, L=40)
    // at a 2048-token context in fp16.
    ModelSpec llama13b("LLaMA-13B", 40, 5120, 40, 32000);
    const double per_seq = llama13b.kvBytesPerToken() * 2048;
    EXPECT_NEAR(per_seq / 1e9, 1.7, 0.1);
}

TEST(ModelSpecTest, KvPerLayerTimesLayersEqualsPerToken)
{
    const auto m = ModelSpec::gpt20b();
    EXPECT_DOUBLE_EQ(m.kvBytesPerTokenPerLayer() * m.numLayers(),
                     m.kvBytesPerToken());
}

TEST(ModelSpecTest, DerivedParamsWithoutOverride)
{
    // 12 h^2 L + vocab*h.
    ModelSpec m("toy", 2, 8, 2, 100);
    EXPECT_DOUBLE_EQ(m.totalParams(), 12.0 * 64 * 2 + 100 * 8);
    EXPECT_DOUBLE_EQ(m.totalWeightBytes(), m.totalParams() * 4);
}

TEST(ModelSpecTest, FlopsPerTokenIsTwoPerParam)
{
    const auto m = ModelSpec::opt6_7b();
    EXPECT_DOUBLE_EQ(m.flopsPerToken(), 2.0 * m.totalParams());
}

TEST(ModelSpecTest, SizeStringFormatsGiB)
{
    EXPECT_EQ(ModelSpec::opt6_7b().sizeString(), "25.0 GiB");
    EXPECT_EQ(ModelSpec::gpt20b().sizeString(), "74.5 GiB");
}

TEST(ModelSpecTest, RejectsInvalidGeometry)
{
    EXPECT_THROW(ModelSpec("bad", 0, 8, 2, 100), std::invalid_argument);
    EXPECT_THROW(ModelSpec("bad", 2, 0, 2, 100), std::invalid_argument);
    EXPECT_THROW(ModelSpec("bad", 2, 8, 0, 100), std::invalid_argument);
    EXPECT_THROW(ModelSpec("bad", 2, 8, 2, 0), std::invalid_argument);
    // hidden not divisible by heads
    EXPECT_THROW(ModelSpec("bad", 2, 9, 2, 100), std::invalid_argument);
}

} // namespace
} // namespace spotserve::model
