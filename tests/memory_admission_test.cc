/**
 * @file
 * Memory-aware (KV-token-budget) admission and chunked prefill.
 *
 * The headline harness asserts the OOM-free invariant the cost model
 * assumes: at every iteration boundary of every replica, the KV tokens
 * reserved by the live batch never exceed the budget
 * MemoryModel::kvBudgetTokens promised for the deployed configuration —
 * across Poisson, spike and long-input workloads, across
 * preemption-driven migrations, in both chunked and unchunked prefill
 * modes.  Satellite regressions cover chunked-prefill edge cases, the
 * bounded decode-stall property, strict-FIFO fairness under tight
 * budgets, the shared popAdmissible bookkeeping, and least-loaded
 * replica balancing at batch formation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "cluster/trace_library.h"
#include "core/spotserve_system.h"
#include "costmodel/memory_model.h"
#include "engine/inference_pipeline.h"
#include "model/model_spec.h"
#include "serving/request_manager.h"
#include "workload/workload.h"

namespace spotserve {
namespace {

const cost::CostParams kParams = cost::CostParams::awsG4dn();

wl::Request
makeRequest(wl::RequestId id, sim::SimTime arrival = 0.0, int input_len = 512,
            int output_len = 128)
{
    wl::Request r;
    r.id = id;
    r.arrival = arrival;
    r.inputLen = input_len;
    r.outputLen = output_len;
    return r;
}

/**
 * Engine-level harness: one pipeline fed from a RequestManager through
 * the budget-aware admission paths, with the KV invariant checked at
 * every iteration boundary.
 */
struct BudgetedServer
{
    sim::Simulation sim;
    model::ModelSpec spec;
    cost::LatencyModel latency;
    par::ParallelConfig config;
    serving::RequestManager requests{sim};
    std::unique_ptr<engine::InferencePipeline> pipeline;

    long budget;
    long boundaries = 0;
    long violations = 0;
    std::vector<wl::RequestId> admissionOrder;
    std::map<wl::RequestId, sim::SimTime> completedAt;

    BudgetedServer(const model::ModelSpec &model_spec,
                   const par::ParallelConfig &cfg, long kv_budget,
                   int chunk_tokens, bool enforce_budget = true)
        : spec(model_spec), latency(spec, kParams), config(cfg),
          budget(kv_budget)
    {
        engine::InferencePipeline::Callbacks cb;
        cb.onRequestComplete = [this](const engine::ActiveRequest &r) {
            completedAt[r.request.id] = sim.now();
            requests.complete(r);
        };
        cb.onIdle = [this](engine::InferencePipeline &) { dispatch(); };
        cb.onAdmit = [this](engine::InferencePipeline &p, int free_slots) {
            auto admitted = requests.admitAtBoundary(free_slots,
                                                     p.freeKvTokens());
            for (const auto &r : admitted)
                admissionOrder.push_back(r.request.id);
            return admitted;
        };
        cb.onBoundary = [this](const engine::InferencePipeline &p) {
            ++boundaries;
            // The invariant is checked against the *reference* budget
            // even when the pipeline itself does not enforce one
            // (fixed-B ablation): that is how the harness detects the
            // over-commitment fixed-B admission allows.
            if (p.kvTokensReserved() > budget ||
                p.kvTokensHeld() > p.kvTokensReserved())
                ++violations;
        };
        engine::BatchingOptions batching;
        batching.kvBudgetTokens =
            enforce_budget ? budget : engine::kUnboundedKvTokens;
        batching.prefillChunkTokens = chunk_tokens;
        pipeline = std::make_unique<engine::InferencePipeline>(
            sim, latency, config, 0, std::move(cb), batching);
    }

    void dispatch()
    {
        if (!pipeline->idle() || pipeline->haltPending() ||
            requests.pendingEmpty()) {
            return;
        }
        auto batch =
            requests.nextBatch(config.batch, pipeline->freeKvTokens());
        for (const auto &r : batch)
            admissionOrder.push_back(r.request.id);
        if (!batch.empty())
            pipeline->startBatch(std::move(batch));
    }

    void submit(const wl::Request &r)
    {
        requests.submit(r);
        dispatch();
    }

    void drive(const wl::Workload &workload)
    {
        for (const auto &req : workload)
            sim.schedule(req.arrival, [this, req] { submit(req); });
    }
};

// ---------------------------------------------------------------------
// Cost-model contract
// ---------------------------------------------------------------------

TEST(KvBudgetModelTest, BudgetMatchesFeasibilityAcrossConfigSpace)
{
    // Property sweep (model x ParallelConfig x seq): the token budget is
    // exactly the feasibility frontier of MemoryModel::fits — a config
    // fits iff its B worst-case sequences fit the budget — and the
    // budget's bytes stay under the per-GPU line the planner reserves.
    for (const auto &spec :
         {model::ModelSpec::opt6_7b(), model::ModelSpec::gpt20b(),
          model::ModelSpec::llama30b()}) {
        cost::MemoryModel mem(spec, kParams);
        for (int pp : {1, 2, 4, 8}) {
            for (int tp : {1, 2, 4, 8}) {
                if (spec.numLayers() < pp)
                    continue;
                for (int batch : {1, 4, 8}) {
                    const par::ParallelConfig c{1, pp, tp, batch};
                    const long budget = mem.kvBudgetTokens(c);
                    for (const auto &seq :
                         {cost::SeqSpec{128, 64}, cost::SeqSpec{512, 128},
                          cost::SeqSpec{1024, 256}}) {
                        const long need = static_cast<long>(batch) *
                                          (seq.inputLen + seq.outputLen);
                        EXPECT_EQ(mem.fits(c, seq), budget >= need)
                            << spec.name() << " " << c.str() << " seq "
                            << seq.inputLen << "+" << seq.outputLen;
                    }
                    // A positive budget's bytes stay under the per-GPU
                    // line (budget 0 = the weights alone don't fit).
                    if (budget > 0) {
                        const double kv_bytes =
                            static_cast<double>(budget) *
                            spec.kvBytesPerToken() / c.gpusPerPipeline();
                        EXPECT_LE(mem.weightShardBytes(c) + kv_bytes +
                                      kParams.workspaceBytes +
                                      mem.migrationReserveBytes(c, true),
                                  kParams.gpu.memBytes * (1.0 + 1e-9))
                            << spec.name() << " " << c.str();
                    }
                }
            }
        }
    }
}

TEST(KvBudgetModelTest, NaiveMigrationReserveShrinksTheBudget)
{
    // With the memory-optimised planner ablated the reserve is a whole
    // double-buffered weight shard, so the enforceable KV budget must
    // shrink — and it must still match the fits() frontier computed
    // with the same flag (the budget a system enforces has to agree
    // with the feasibility check that picked its deployment).
    const auto spec = model::ModelSpec::opt6_7b();
    const cost::MemoryModel mem(spec, kParams);
    const par::ParallelConfig c{1, 2, 2, 8};
    EXPECT_LT(mem.kvBudgetTokens(c, false), mem.kvBudgetTokens(c, true));
    for (const auto &seq :
         {cost::SeqSpec{512, 128}, cost::SeqSpec{1024, 256}}) {
        const long need =
            static_cast<long>(c.batch) * (seq.inputLen + seq.outputLen);
        EXPECT_EQ(mem.fits(c, seq, false),
                  mem.kvBudgetTokens(c, false) >= need);
    }
}

TEST(KvBudgetModelTest, ChunkedMixedIterTimeReducesToUnchunked)
{
    const auto spec = model::ModelSpec::opt6_7b();
    const cost::LatencyModel latency(spec, kParams);
    const par::ParallelConfig c{1, 1, 4, 8};
    // No committed prefix: the 6-arg overload is the 5-arg one.
    EXPECT_DOUBLE_EQ(latency.mixedIterTime(c, 2, 256, 0, 3, 600),
                     latency.mixedIterTime(c, 2, 256, 3, 600));
    // A committed prefix adds its (memory-bound) KV re-read, nothing else.
    EXPECT_GT(latency.mixedIterTime(c, 2, 256, 512, 3, 600),
              latency.mixedIterTime(c, 2, 256, 3, 600));
    // The re-read term scales with the prefix length.
    const double short_pfx = latency.mixedIterTime(c, 1, 256, 256, 0, 0);
    const double long_pfx = latency.mixedIterTime(c, 1, 256, 1792, 0, 0);
    EXPECT_GT(long_pfx, short_pfx);
}

// ---------------------------------------------------------------------
// Tentpole: the OOM-free invariant, engine level
// ---------------------------------------------------------------------

TEST(MemoryAdmissionTest, InvariantHoldsAcrossModelConfigSeqSweep)
{
    // Property-style sweep: tight budgets (3 worst-case sequences) over
    // model x config x seq x chunk mode.  The invariant must hold at
    // every boundary and every request must still complete (no
    // admission deadlock, no starvation).
    const struct
    {
        model::ModelSpec spec;
        par::ParallelConfig config;
    } kSetups[] = {
        {model::ModelSpec::opt6_7b(), par::ParallelConfig{1, 1, 4, 8}},
        {model::ModelSpec::opt6_7b(), par::ParallelConfig{1, 4, 1, 2}},
        {model::ModelSpec::gpt20b(), par::ParallelConfig{1, 2, 2, 4}},
    };
    for (const auto &setup : kSetups) {
        for (const auto &seq :
             {cost::SeqSpec{128, 32}, cost::SeqSpec{512, 128}}) {
            for (int chunk : {0, 96}) {
                const long peak = seq.inputLen + seq.outputLen;
                BudgetedServer s(setup.spec, setup.config, 3 * peak, chunk);
                sim::Rng rng(99);
                const auto workload =
                    wl::stationaryPoisson(0.3, 120.0, seq, rng);
                s.drive(workload);
                s.sim.run();
                EXPECT_EQ(s.violations, 0)
                    << setup.spec.name() << " " << setup.config.str()
                    << " chunk " << chunk;
                EXPECT_GT(s.boundaries, 0);
                EXPECT_EQ(s.requests.completedCount(),
                          static_cast<long>(workload.size()));
            }
        }
    }
}

TEST(MemoryAdmissionTest, FixedBAdmissionOvercommitsWhereBudgetDoesNot)
{
    // The regression that motivates the whole feature: long-input
    // requests under fixed-B admission (the reference budget observed
    // but not enforced) overshoot the KV budget the cost model promised;
    // token-budget admission with the same inputs never does.
    const long budget = 3000; // tokens; one 2048+128 request fits alone
    auto run = [&](bool enforce) {
        BudgetedServer s(model::ModelSpec::opt6_7b(),
                         par::ParallelConfig{1, 1, 4, 8}, budget,
                         /*chunk=*/0, enforce);
        wl::Workload workload;
        for (int i = 0; i < 8; ++i)
            workload.push_back(
                makeRequest(i, 0.1 * i, /*input=*/2048, /*output=*/128));
        s.drive(workload);
        s.sim.run();
        EXPECT_EQ(s.requests.completedCount(), 8);
        return s.violations;
    };
    EXPECT_GT(run(false), 0); // fixed-B packs 8 x 2176 tokens into 3000
    EXPECT_EQ(run(true), 0);  // budget admission holds the line
}

TEST(MemoryAdmissionTest, StartBatchRejectsOverBudgetBatch)
{
    BudgetedServer s(model::ModelSpec::opt6_7b(),
                     par::ParallelConfig{1, 1, 4, 8}, /*budget=*/1000,
                     /*chunk=*/0);
    std::vector<engine::ActiveRequest> batch(2);
    batch[0].request = makeRequest(1, 0.0, 512, 128); // peak 640
    batch[1].request = makeRequest(2, 0.0, 512, 128); // peak 640
    EXPECT_THROW(s.pipeline->startBatch(std::move(batch)),
                 std::invalid_argument);
}

// ---------------------------------------------------------------------
// Tentpole: the OOM-free invariant, full system across migrations
// ---------------------------------------------------------------------

using cluster::AvailabilityTrace;
using cluster::InstanceType;
using cluster::TraceEvent;
using cluster::TraceEventKind;

/** Joins, a preemption, a replacement join, and a second preemption. */
AvailabilityTrace
churnTrace()
{
    return AvailabilityTrace(
        "churn", 1200.0,
        {TraceEvent{0.0, TraceEventKind::Join, InstanceType::Spot, 8},
         TraceEvent{300.0, TraceEventKind::PreemptNotice, InstanceType::Spot,
                    1},
         TraceEvent{500.0, TraceEventKind::Join, InstanceType::Spot, 1},
         TraceEvent{800.0, TraceEventKind::PreemptNotice, InstanceType::Spot,
                    1}});
}

struct SystemInvariantResult
{
    long checks = 0;
    long violations = 0;
    int migrations = 0;
    long completed = 0;
    long arrived = 0;
};

/**
 * Run SpotServe over the churn trace and @p workload, asserting at every
 * iteration boundary of every replica that the reserved KV tokens stay
 * within the deployed configuration's budget, and that the implied
 * per-GPU bytes stay under the memory model's line.
 */
SystemInvariantResult
runSystemInvariant(const wl::Workload &workload, int chunk_tokens)
{
    const auto spec = model::ModelSpec::gpt20b();
    const auto trace = churnTrace();
    const cost::SeqSpec seq{};
    const cost::MemoryModel mem(spec, kParams);

    sim::Simulation sim;
    cluster::InstanceManager instances(sim, kParams);
    serving::RequestManager requests(sim);
    core::SpotServeOptions options;
    options.designArrivalRate = 0.35;
    options.prefillChunkTokens = chunk_tokens;
    core::SpotServeSystem system(sim, instances, requests, spec, kParams,
                                 seq, options);

    SystemInvariantResult out;
    system.setKvObserver([&](const engine::InferencePipeline &p) {
        ++out.checks;
        const long budget = mem.kvBudgetTokens(p.config());
        if (p.kvTokensReserved() > budget ||
            p.kvTokensHeld() > p.kvTokensReserved())
            ++out.violations;
        const double kv_bytes = static_cast<double>(p.kvTokensHeld()) *
                                spec.kvBytesPerToken() /
                                p.config().gpusPerPipeline();
        if (mem.weightShardBytes(p.config()) + kv_bytes +
                kParams.workspaceBytes +
                mem.migrationReserveBytes(p.config(), true) >
            kParams.gpu.memBytes)
            ++out.violations;
    });

    instances.setListener(&system);
    instances.loadTrace(trace);
    for (const auto &req : workload) {
        sim.schedule(req.arrival,
                     [&system, req] { system.onRequestArrival(req); });
    }
    sim.run(trace.duration() + 900.0);

    out.migrations = system.migrationsCompleted();
    out.completed = requests.completedCount();
    out.arrived = requests.arrivedCount();
    return out;
}

TEST(MemoryAdmissionTest, InvariantHoldsAcrossTracesAndMigrations)
{
    const cost::SeqSpec seq{};
    // Poisson, spike, and long-input workloads; the long-input one mixes
    // sequences up to 4x the planning length, which is exactly where
    // fixed-B admission would overshoot the planned footprint.
    auto poisson = [&] {
        sim::Rng rng(5);
        return wl::stationaryPoisson(0.3, 900.0, seq, rng);
    };
    auto spike = [&] {
        sim::Rng rng(6);
        return wl::fluctuating(
            [](sim::SimTime t) {
                return (t >= 300.0 && t < 420.0) ? 1.5 : 0.2;
            },
            1.0, 900.0, seq, rng);
    };
    auto longInput = [&] {
        sim::Rng rng(7);
        auto w = wl::stationaryPoisson(0.25, 900.0, seq, rng);
        const int lens[] = {512, 1024, 2048};
        for (std::size_t i = 0; i < w.size(); ++i)
            w[i].inputLen = lens[i % 3];
        return w;
    };

    int variant = 0;
    for (const auto &make : {std::function<wl::Workload()>(poisson),
                             std::function<wl::Workload()>(spike),
                             std::function<wl::Workload()>(longInput)}) {
        const auto workload = make();
        for (int chunk : {0, 256}) {
            const auto r = runSystemInvariant(workload, chunk);
            EXPECT_EQ(r.violations, 0)
                << "workload " << variant << " chunk " << chunk;
            EXPECT_GT(r.checks, 0);
            EXPECT_GE(r.migrations, 2); // initial + preemption-driven
            EXPECT_EQ(r.completed, r.arrived)
                << "workload " << variant << " chunk " << chunk;
        }
        ++variant;
    }
}

// ---------------------------------------------------------------------
// Chunked-prefill edge cases
// ---------------------------------------------------------------------

TEST(ChunkedPrefillTest, InputShorterThanChunkMatchesUnchunked)
{
    auto run = [&](int chunk) {
        BudgetedServer s(model::ModelSpec::opt6_7b(),
                         par::ParallelConfig{1, 1, 4, 8},
                         engine::kUnboundedKvTokens - 1, chunk);
        s.drive({makeRequest(1, 0.0, /*input=*/256, /*output=*/16)});
        s.sim.run();
        EXPECT_EQ(s.requests.completedCount(), 1);
        return s.completedAt[1];
    };
    EXPECT_DOUBLE_EQ(run(512), run(0));
}

TEST(ChunkedPrefillTest, ExactMultipleChunksPrefillWithoutRemainder)
{
    const auto spec = model::ModelSpec::opt6_7b();
    const cost::LatencyModel latency(spec, kParams);
    const par::ParallelConfig c{1, 1, 4, 8};
    const int input = 1024;
    const int chunk = 256;
    const int output = 4;

    BudgetedServer s(spec, c, engine::kUnboundedKvTokens - 1, chunk);
    s.drive({makeRequest(1, 0.0, input, output)});
    s.sim.run();
    ASSERT_EQ(s.requests.completedCount(), 1);
    EXPECT_EQ(s.pipeline->tokensCommitted(), output);

    // Exactly input/chunk prefill iterations (no zero-length remainder
    // chunk), then `output` decode iterations at growing context.
    double expected = 0.0;
    for (int prefix = 0; prefix < input; prefix += chunk)
        expected += latency.mixedIterTime(c, 1, chunk, prefix, 0, 0);
    for (int i = 0; i < output; ++i)
        expected += latency.mixedIterTime(c, 0, 0, 0, 1, input + i + 1);
    EXPECT_NEAR(s.completedAt[1], expected, expected * 1e-9);
}

TEST(ChunkedPrefillTest, HaltMidPrefillResumesCommittedChunksOnNewConfig)
{
    const auto spec = model::ModelSpec::opt6_7b();
    const cost::LatencyModel latency(spec, kParams);
    const par::ParallelConfig c1{1, 1, 4, 8};
    const int input = 1024;
    const int chunk = 256;

    BudgetedServer s(spec, c1, engine::kUnboundedKvTokens - 1, chunk);
    s.drive({makeRequest(1, 0.0, input, /*output=*/8)});
    // Run past the first chunk boundary, into the second chunk.
    const double first_chunk = latency.mixedIterTime(c1, 1, chunk, 0, 0, 0);
    s.sim.run(first_chunk * 1.5);
    s.pipeline->haltNow();
    auto drained = s.pipeline->takeBatch();
    ASSERT_EQ(drained.size(), 1u);
    // The in-flight second chunk is abandoned; the first one is
    // committed and survives the halt.
    EXPECT_EQ(drained[0].prefillTokens, chunk);
    EXPECT_EQ(drained[0].committedTokens, 0);
    EXPECT_FALSE(drained[0].prefilled);

    // Requeue with committed chunks intact (cache context migrated), and
    // resume on a *different* parallel configuration.
    BudgetedServer s2(spec, par::ParallelConfig{1, 2, 2, 4},
                      engine::kUnboundedKvTokens - 1, chunk);
    s2.requests.requeue(std::move(drained));
    s2.dispatch();
    s2.sim.run();
    ASSERT_EQ(s2.requests.completedCount(), 1);
    // Only the remaining three chunks were prefilled: no restart, and
    // the resumed run is exactly one chunk cheaper than a from-scratch
    // run on the new config.
    EXPECT_EQ(s2.pipeline->tokensCommitted(), 8);
    const par::ParallelConfig c2{1, 2, 2, 4};
    double decodes = 0.0;
    for (int i = 0; i < 8; ++i)
        decodes += latency.mixedIterTime(c2, 0, 0, 0, 1, input + i + 1);
    double resumed = decodes;
    for (int prefix = chunk; prefix < input; prefix += chunk)
        resumed += latency.mixedIterTime(c2, 1, chunk, prefix, 0, 0);
    double from_scratch = decodes;
    for (int prefix = 0; prefix < input; prefix += chunk)
        from_scratch += latency.mixedIterTime(c2, 1, chunk, prefix, 0, 0);
    EXPECT_NEAR(s2.completedAt[1], resumed, resumed * 1e-9);
    EXPECT_LT(s2.completedAt[1], from_scratch);
}

TEST(ChunkedPrefillTest, DecodeStallBoundedByOneChunk)
{
    // Regression for the head-of-line-blocking bound: with chunked
    // prefill, an incumbent's worst inter-token gap is one mixed
    // iteration (one chunk's prefill + KV re-read + one decode), not the
    // newcomer's whole prefill.
    const auto spec = model::ModelSpec::opt6_7b();
    const cost::LatencyModel latency(spec, kParams);
    const par::ParallelConfig c{1, 1, 4, 8};
    const int long_input = 2048;
    const int chunk = 256;

    auto maxGap = [&](int chunk_tokens) {
        BudgetedServer s(spec, c, engine::kUnboundedKvTokens - 1,
                         chunk_tokens);
        double last_commit = 0.0;
        int last_tokens = 0;
        double max_gap = 0.0;
        s.pipeline = nullptr; // rebuild with a commit-tracking observer
        engine::InferencePipeline::Callbacks cb;
        cb.onRequestComplete = [&s](const engine::ActiveRequest &r) {
            s.completedAt[r.request.id] = s.sim.now();
            s.requests.complete(r);
        };
        cb.onIdle = [&s](engine::InferencePipeline &) { s.dispatch(); };
        cb.onAdmit = [&s](engine::InferencePipeline &p, int free_slots) {
            return s.requests.admitAtBoundary(free_slots, p.freeKvTokens());
        };
        cb.onBoundary = [&](const engine::InferencePipeline &p) {
            for (const auto &r : p.batch()) {
                if (r.request.id != 1)
                    continue;
                if (r.committedTokens > last_tokens) {
                    if (last_tokens > 0)
                        max_gap =
                            std::max(max_gap, s.sim.now() - last_commit);
                    last_tokens = r.committedTokens;
                    last_commit = s.sim.now();
                }
            }
        };
        engine::BatchingOptions batching;
        batching.prefillChunkTokens = chunk_tokens;
        s.pipeline = std::make_unique<engine::InferencePipeline>(
            s.sim, s.latency, c, 0, std::move(cb), batching);
        s.drive({makeRequest(1, 0.0, 512, 64),
                 makeRequest(2, 2.0, long_input, 8)});
        s.sim.run();
        EXPECT_EQ(s.requests.completedCount(), 2);
        return max_gap;
    };

    const double unchunked = maxGap(0);
    const double chunked = maxGap(chunk);
    // One chunk's worth of mixed iteration bounds the chunked stall...
    const double bound =
        latency.mixedIterTime(c, 1, chunk, long_input - chunk, 1,
                              512 + 64 + 1);
    EXPECT_LE(chunked, bound * (1.0 + 1e-9));
    // ...while the unchunked stall pays the whole 2048-token prefill.
    EXPECT_GT(unchunked, chunked);
    EXPECT_GE(unchunked,
              latency.mixedIterTime(c, 1, long_input, 0, 1, 512 + 1));
}

// ---------------------------------------------------------------------
// FIFO fairness under tight budgets
// ---------------------------------------------------------------------

TEST(FifoFairnessTest, NothingSlipsPastABlockedHead)
{
    // Documented policy: strict FIFO head-blocking.  When the queue head
    // does not fit the remaining budget, smaller requests behind it are
    // NOT admitted past it — so a large request can wait, but can never
    // be starved by a stream of small ones.
    sim::Simulation sim;
    serving::RequestManager mgr(sim);
    mgr.submit(makeRequest(1, 0.0, 1000, 100)); // peak 1100
    mgr.submit(makeRequest(2, 1.0, 100, 10));   // peak 110
    mgr.submit(makeRequest(3, 2.0, 100, 10));   // peak 110

    // Head does not fit: nothing admits, even though the small ones fit.
    EXPECT_TRUE(mgr.admitAtBoundary(4, 1000).empty());
    EXPECT_EQ(mgr.midBatchAdmissions(), 0);
    EXPECT_EQ(mgr.pendingCount(), 3u);

    // Once the head fits, it leads and the rest follow in order.
    const auto got = mgr.admitAtBoundary(4, 1210);
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0].request.id, 1);
    EXPECT_EQ(got[1].request.id, 2);
    EXPECT_EQ(mgr.midBatchAdmissions(), 2);
}

TEST(FifoFairnessTest, LargeHeadIsNotStarvedUnderTightBudget)
{
    // End to end: small requests keep arriving behind a large one under
    // a budget that fits either the large request alone or a few small
    // ones.  The large request must be admitted (in arrival order) and
    // complete; admission order must equal arrival order throughout.
    const long budget = 1600; // large peak 1280; small peak 320
    BudgetedServer s(model::ModelSpec::opt6_7b(),
                     par::ParallelConfig{1, 1, 4, 8}, budget, /*chunk=*/0);
    wl::Workload workload;
    wl::RequestId id = 0;
    workload.push_back(makeRequest(id++, 0.0, 256, 64));  // small
    workload.push_back(makeRequest(id++, 0.1, 256, 64));  // small
    workload.push_back(makeRequest(id++, 0.2, 1024, 256)); // the large one
    for (int i = 0; i < 12; ++i)
        workload.push_back(makeRequest(id++, 0.3 + 0.5 * i, 256, 64));
    s.drive(workload);
    s.sim.run();

    EXPECT_EQ(s.requests.completedCount(), static_cast<long>(id));
    EXPECT_EQ(s.violations, 0);
    // Strict FIFO: admissions happen in arrival (id) order, so the large
    // request was not overtaken while it waited for headroom.
    ASSERT_EQ(s.admissionOrder.size(), static_cast<std::size_t>(id));
    for (std::size_t i = 0; i < s.admissionOrder.size(); ++i)
        EXPECT_EQ(s.admissionOrder[i], static_cast<wl::RequestId>(i));
}

// ---------------------------------------------------------------------
// Shared popAdmissible bookkeeping (bugfix)
// ---------------------------------------------------------------------

TEST(AdmissionBookkeepingTest, BothPopPathsAgreeAndCountConsistently)
{
    auto fill = [](serving::RequestManager &mgr) {
        mgr.submit(makeRequest(1, 0.0, 512, 128));
        mgr.submit(makeRequest(2, 1.0, 512, 128));
        mgr.submit(makeRequest(3, 2.0, 512, 128));
        mgr.submit(makeRequest(4, 3.0, 512, 128));
    };
    sim::Simulation sim;
    serving::RequestManager a(sim);
    serving::RequestManager b(sim);
    fill(a);
    fill(b);

    // Same budget, same slots: idle-batch formation and boundary
    // admission pop the identical FIFO prefix (shared popAdmissible)...
    const long budget = 2 * 640 + 100; // two requests fit
    const auto batch = a.nextBatch(3, budget);
    const auto admitted = b.admitAtBoundary(3, budget);
    ASSERT_EQ(batch.size(), 2u);
    ASSERT_EQ(admitted.size(), 2u);
    for (std::size_t i = 0; i < batch.size(); ++i)
        EXPECT_EQ(batch[i].request.id, admitted[i].request.id);

    // ...but only boundary admission counts as mid-batch admission.
    EXPECT_EQ(a.midBatchAdmissions(), 0);
    EXPECT_EQ(b.midBatchAdmissions(), 2);

    // Unbudgeted defaults remain slot-limited only.
    EXPECT_EQ(a.nextBatch(5).size(), 2u);
    EXPECT_EQ(b.admitAtBoundary(5).size(), 2u);
    EXPECT_EQ(b.midBatchAdmissions(), 4);
}

TEST(AdmissionBookkeepingTest, RequeuePreservesPrefillChunksOnly)
{
    sim::Simulation sim;
    serving::RequestManager mgr(sim);
    engine::ActiveRequest mid;
    mid.request = makeRequest(7, 0.0, 1024, 128);
    mid.prefillTokens = 512; // two committed chunks, no output yet
    mgr.requeue({mid});
    const auto got = mgr.nextBatch(1);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].prefillTokens, 512);

    engine::ActiveRequest decoded = mid;
    decoded.committedTokens = 3;
    EXPECT_THROW(mgr.requeue({decoded}), std::invalid_argument);
}

// ---------------------------------------------------------------------
// Least-loaded replica balancing
// ---------------------------------------------------------------------

struct TestSystem : serving::BaseServingSystem
{
    TestSystem(sim::Simulation &s, cluster::InstanceManager &im,
               serving::RequestManager &rm, const model::ModelSpec &spec)
        : BaseServingSystem(s, im, rm, spec, kParams, cost::SeqSpec{})
    {
    }
    std::string name() const override { return "TestSystem"; }
    void onInstanceReady(const cluster::Instance &) override {}
    void onPreemptionNotice(const cluster::Instance &, sim::SimTime) override
    {
    }
    void onInstancePreempted(const cluster::Instance &) override {}
    void onInstanceReleased(const cluster::Instance &) override {}

    using BaseServingSystem::deployment;
    using BaseServingSystem::dispatchAll;
    using BaseServingSystem::installDeployment;
    using BaseServingSystem::packedMesh;
    using BaseServingSystem::replicaKvBudget;
    using BaseServingSystem::setMemOptReserve;
};

TEST(ReplicaBalancingTest, IdleBatchFormationSpreadsAcrossReplicas)
{
    const auto spec = model::ModelSpec::opt6_7b();
    sim::Simulation sim;
    cluster::InstanceManager instances(sim, kParams);
    serving::RequestManager requests(sim);
    TestSystem system(sim, instances, requests, spec);

    instances.loadTrace(AvailabilityTrace(
        "steady", 100.0,
        {TraceEvent{0.0, TraceEventKind::Join, InstanceType::Spot, 2}}));
    sim.run(1.0);

    const par::ParallelConfig config{2, 2, 2, 8};
    system.installDeployment(config,
                             system.packedMesh(config,
                                               instances.usableInstances()));

    // Six requests pending before any dispatch: the old code would stuff
    // all six into replica 0 (B = 8); balanced formation deals 3 + 3.
    for (int i = 0; i < 6; ++i)
        requests.submit(makeRequest(i, 0.0));
    system.dispatchAll();

    ASSERT_EQ(system.deployment().pipelines.size(), 2u);
    EXPECT_EQ(system.deployment().pipelines[0]->batch().size(), 3u);
    EXPECT_EQ(system.deployment().pipelines[1]->batch().size(), 3u);
    EXPECT_TRUE(requests.pendingEmpty());
}

TEST(ReplicaBalancingTest, OversizedRequestIsRejectedNotHeadBlocking)
{
    // A request whose worst-case KV exceeds a whole replica's budget can
    // never be served under this configuration; it must be dropped with
    // a rejection count, not left to head-block the strict-FIFO queue
    // (which would starve everything behind it forever).
    const auto spec = model::ModelSpec::opt6_7b();
    sim::Simulation sim;
    cluster::InstanceManager instances(sim, kParams);
    serving::RequestManager requests(sim);
    TestSystem system(sim, instances, requests, spec);

    instances.loadTrace(AvailabilityTrace(
        "steady", 100.0,
        {TraceEvent{0.0, TraceEventKind::Join, InstanceType::Spot, 2}}));
    sim.run(1.0);
    const par::ParallelConfig config{2, 2, 2, 8};
    system.installDeployment(config,
                             system.packedMesh(config,
                                               instances.usableInstances()));
    const long budget = system.replicaKvBudget(config);

    system.onRequestArrival(makeRequest(
        0, sim.now(), static_cast<int>(budget) + 1, 100)); // unservable
    system.onRequestArrival(makeRequest(1, sim.now()));    // normal
    EXPECT_EQ(requests.rejectedCount(), 1);
    sim.run();
    EXPECT_EQ(requests.completedCount(), 1);
    EXPECT_EQ(requests.completions().front().id, 1);
}

TEST(ReplicaBalancingTest, BudgetTracksTheMigrationReserveMode)
{
    // The enforced budget must deduct the same migration reserve the
    // feasibility check assumed: ablating the memory-optimised planner
    // (naive double buffering) shrinks it.
    const auto spec = model::ModelSpec::opt6_7b();
    sim::Simulation sim;
    cluster::InstanceManager instances(sim, kParams);
    serving::RequestManager requests(sim);
    TestSystem system(sim, instances, requests, spec);
    // P*M = 8: the shard is small enough that even the naive
    // double-buffered reserve leaves positive KV headroom.
    const par::ParallelConfig config{1, 2, 4, 8};
    const long opt = system.replicaKvBudget(config);
    system.setMemOptReserve(false);
    const long naive = system.replicaKvBudget(config);
    EXPECT_LT(naive, opt);
    const cost::MemoryModel mem(spec, kParams);
    EXPECT_EQ(opt, mem.kvBudgetTokens(config, true));
    EXPECT_EQ(naive, mem.kvBudgetTokens(config, false));
}

} // namespace
} // namespace spotserve
