/**
 * @file
 * Memory-aware (KV-token-budget) admission and chunked prefill.
 *
 * The headline harness asserts the OOM-free invariant the cost model
 * assumes: at every iteration boundary of every replica, the KV tokens
 * reserved by the live batch never exceed the budget
 * MemoryModel::kvBudgetTokens promised for the deployed configuration —
 * across Poisson, spike and long-input workloads, across
 * preemption-driven migrations, in both chunked and unchunked prefill
 * modes.  Satellite regressions cover chunked-prefill edge cases, the
 * bounded decode-stall property, strict-FIFO fairness under tight
 * budgets, the shared popAdmissible bookkeeping, and least-loaded
 * replica balancing at batch formation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <memory>
#include <vector>

#include "simcore/simulation.h"
#include "cluster/trace_library.h"
#include "core/spotserve_system.h"
#include "costmodel/memory_model.h"
#include "engine/inference_pipeline.h"
#include "model/model_spec.h"
#include "serving/request_manager.h"
#include "workload/workload.h"

namespace spotserve {
namespace {

const cost::CostParams kParams = cost::CostParams::awsG4dn();

/**
 * KV block size the system-level block-mode suites run with.  Defaults
 * to the serving layer's paged default (16); CI additionally runs the
 * whole binary with SPOTSERVE_TEST_KV_BLOCK_TOKENS=1 so both block
 * modes go through the full preemption/migration matrix (the ASan job
 * exercises both).
 */
int
testBlockTokens()
{
    if (const char *env = std::getenv("SPOTSERVE_TEST_KV_BLOCK_TOKENS")) {
        const int v = std::atoi(env);
        if (v >= 1)
            return v;
    }
    return 16;
}

wl::Request
makeRequest(wl::RequestId id, sim::SimTime arrival = 0.0, int input_len = 512,
            int output_len = 128)
{
    wl::Request r;
    r.id = id;
    r.arrival = arrival;
    r.inputLen = input_len;
    r.outputLen = output_len;
    return r;
}

/** A request that declares a generation cap above its actual length. */
wl::Request
makeCapped(wl::RequestId id, sim::SimTime arrival, int input_len,
           int actual_output, int output_cap)
{
    wl::Request r = makeRequest(id, arrival, input_len, actual_output);
    r.outputCap = output_cap;
    return r;
}

/**
 * Engine-level harness: one pipeline fed from a RequestManager through
 * the budget-aware admission paths, with the KV invariant checked at
 * every iteration boundary.
 */
struct BudgetedServer
{
    sim::Simulation sim;
    model::ModelSpec spec;
    cost::LatencyModel latency;
    par::ParallelConfig config;
    serving::RequestManager requests{sim};
    std::unique_ptr<engine::InferencePipeline> pipeline;

    long budget;
    int blockTokens;
    /** Block size the *observer* checks the paged invariant with.  By
     *  default the pipeline's own granularity; the token-over-promise
     *  regression sets it above a token-granular pipeline to show what a
     *  real paged allocator would have been asked for. */
    int obsBlockTokens;
    long obsBudgetBlocks;
    long boundaries = 0;
    long violations = 0;
    long blockViolations = 0;
    std::vector<wl::RequestId> admissionOrder;
    std::map<wl::RequestId, sim::SimTime> completedAt;

    BudgetedServer(const model::ModelSpec &model_spec,
                   const par::ParallelConfig &cfg, long kv_budget,
                   int chunk_tokens, bool enforce_budget = true,
                   int block_tokens = 1, int observe_block_tokens = 0)
        : spec(model_spec), latency(spec, kParams), config(cfg),
          budget(kv_budget),
          // The shared engine rule: budgets smaller than one block
          // degrade to token accounting.
          blockTokens(engine::effectiveKvBlockTokens(kv_budget,
                                                     block_tokens)),
          obsBlockTokens(observe_block_tokens > 0 ? observe_block_tokens
                                                  : blockTokens),
          obsBudgetBlocks(kv_budget == engine::kUnboundedKvTokens
                              ? engine::kUnboundedKvBlocks
                              : std::max(1L, kv_budget / obsBlockTokens))
    {
        engine::InferencePipeline::Callbacks cb;
        cb.onRequestComplete = [this](const engine::ActiveRequest &r) {
            completedAt[r.request.id] = sim.now();
            requests.complete(r);
        };
        cb.onIdle = [this](engine::InferencePipeline &) { dispatch(); };
        cb.onAdmit = [this](engine::InferencePipeline &p, int free_slots) {
            auto admitted = requests.admitAtBoundary(
                free_slots, p.freeKvBlocks(), engine::KvAdmissionMode::Reserve,
                engine::kUnboundedKvBlocks, blockTokens);
            for (const auto &r : admitted)
                admissionOrder.push_back(r.request.id);
            return admitted;
        };
        cb.onBoundary = [this](const engine::InferencePipeline &p) {
            ++boundaries;
            // The invariant is checked against the *reference* budget
            // even when the pipeline itself does not enforce one
            // (fixed-B ablation): that is how the harness detects the
            // over-commitment fixed-B admission allows.
            if (p.kvTokensReserved() > budget ||
                p.kvTokensHeld() > p.kvTokensReserved())
                ++violations;
            // The paged-allocator invariant: ceil-rounded blocks (what a
            // real allocator hands out) never exceed the whole blocks
            // the budget contains.  Computed with this harness's
            // reference block size even when the pipeline itself
            // accounts at a different granularity — that is how the
            // harness shows token-granular admission over-promising
            // paged memory.
            long held_blocks = 0;
            for (const auto &r : p.batch())
                held_blocks += r.kvBlocksHeld(obsBlockTokens);
            if (held_blocks > obsBudgetBlocks)
                ++blockViolations;
        };
        engine::BatchingOptions batching;
        batching.kvBudgetTokens =
            enforce_budget ? budget : engine::kUnboundedKvTokens;
        batching.kvBlockTokens = blockTokens;
        batching.prefillChunkTokens = chunk_tokens;
        // This harness exercises the reservation-based (PR 2) admission
        // semantics; the optimistic mode has its own harness below.
        batching.kvAdmissionMode = engine::KvAdmissionMode::Reserve;
        pipeline = std::make_unique<engine::InferencePipeline>(
            sim, latency, config, 0, std::move(cb), batching);
    }

    void dispatch()
    {
        if (!pipeline->idle() || pipeline->haltPending() ||
            requests.pendingEmpty()) {
            return;
        }
        auto batch =
            requests.nextBatch(config.batch, pipeline->freeKvBlocks(),
                               engine::KvAdmissionMode::Reserve,
                               engine::kUnboundedKvBlocks, blockTokens);
        for (const auto &r : batch)
            admissionOrder.push_back(r.request.id);
        if (!batch.empty())
            pipeline->startBatch(std::move(batch));
    }

    void submit(const wl::Request &r)
    {
        requests.submit(r);
        dispatch();
    }

    void drive(const wl::Workload &workload)
    {
        for (const auto &req : workload)
            sim.schedule(req.arrival, [this, req] { submit(req); });
    }
};

// ---------------------------------------------------------------------
// Cost-model contract
// ---------------------------------------------------------------------

TEST(KvBudgetModelTest, BudgetMatchesFeasibilityAcrossConfigSpace)
{
    // Property sweep (model x ParallelConfig x seq): the token budget is
    // exactly the feasibility frontier of MemoryModel::fits — a config
    // fits iff its B worst-case sequences fit the budget — and the
    // budget's bytes stay under the per-GPU line the planner reserves.
    for (const auto &spec :
         {model::ModelSpec::opt6_7b(), model::ModelSpec::gpt20b(),
          model::ModelSpec::llama30b()}) {
        cost::MemoryModel mem(spec, kParams);
        for (int pp : {1, 2, 4, 8}) {
            for (int tp : {1, 2, 4, 8}) {
                if (spec.numLayers() < pp)
                    continue;
                for (int batch : {1, 4, 8}) {
                    const par::ParallelConfig c{1, pp, tp, batch};
                    const long budget = mem.kvBudgetTokens(c);
                    for (const auto &seq :
                         {cost::SeqSpec{128, 64}, cost::SeqSpec{512, 128},
                          cost::SeqSpec{1024, 256}}) {
                        const long need = static_cast<long>(batch) *
                                          (seq.inputLen + seq.outputLen);
                        EXPECT_EQ(mem.fits(c, seq), budget >= need)
                            << spec.name() << " " << c.str() << " seq "
                            << seq.inputLen << "+" << seq.outputLen;
                    }
                    // A positive budget's bytes stay under the per-GPU
                    // line (budget 0 = the weights alone don't fit).
                    if (budget > 0) {
                        const double kv_bytes =
                            static_cast<double>(budget) *
                            spec.kvBytesPerToken() / c.gpusPerPipeline();
                        EXPECT_LE(mem.weightShardBytes(c) + kv_bytes +
                                      kParams.workspaceBytes +
                                      mem.migrationReserveBytes(c, true),
                                  kParams.gpu.memBytes * (1.0 + 1e-9))
                            << spec.name() << " " << c.str();
                    }
                }
            }
        }
    }
}

TEST(KvBudgetModelTest, NaiveMigrationReserveShrinksTheBudget)
{
    // With the memory-optimised planner ablated the reserve is a whole
    // double-buffered weight shard, so the enforceable KV budget must
    // shrink — and it must still match the fits() frontier computed
    // with the same flag (the budget a system enforces has to agree
    // with the feasibility check that picked its deployment).
    const auto spec = model::ModelSpec::opt6_7b();
    const cost::MemoryModel mem(spec, kParams);
    const par::ParallelConfig c{1, 2, 2, 8};
    EXPECT_LT(mem.kvBudgetTokens(c, false), mem.kvBudgetTokens(c, true));
    for (const auto &seq :
         {cost::SeqSpec{512, 128}, cost::SeqSpec{1024, 256}}) {
        const long need =
            static_cast<long>(c.batch) * (seq.inputLen + seq.outputLen);
        EXPECT_EQ(mem.fits(c, seq, false),
                  mem.kvBudgetTokens(c, false) >= need);
    }
}

TEST(KvBudgetModelTest, ChunkedMixedIterTimeReducesToUnchunked)
{
    const auto spec = model::ModelSpec::opt6_7b();
    const cost::LatencyModel latency(spec, kParams);
    const par::ParallelConfig c{1, 1, 4, 8};
    // No committed prefix: the 6-arg overload is the 5-arg one.
    EXPECT_DOUBLE_EQ(latency.mixedIterTime(c, 2, 256, 0, 3, 600),
                     latency.mixedIterTime(c, 2, 256, 3, 600));
    // A committed prefix adds its (memory-bound) KV re-read, nothing else.
    EXPECT_GT(latency.mixedIterTime(c, 2, 256, 512, 3, 600),
              latency.mixedIterTime(c, 2, 256, 3, 600));
    // The re-read term scales with the prefix length.
    const double short_pfx = latency.mixedIterTime(c, 1, 256, 256, 0, 0);
    const double long_pfx = latency.mixedIterTime(c, 1, 256, 1792, 0, 0);
    EXPECT_GT(long_pfx, short_pfx);
}

// ---------------------------------------------------------------------
// Tentpole: the OOM-free invariant, engine level
// ---------------------------------------------------------------------

TEST(MemoryAdmissionTest, InvariantHoldsAcrossModelConfigSeqSweep)
{
    // Property-style sweep: tight budgets (3 worst-case sequences) over
    // model x config x seq x chunk mode.  The invariant must hold at
    // every boundary and every request must still complete (no
    // admission deadlock, no starvation).
    const struct
    {
        model::ModelSpec spec;
        par::ParallelConfig config;
    } kSetups[] = {
        {model::ModelSpec::opt6_7b(), par::ParallelConfig{1, 1, 4, 8}},
        {model::ModelSpec::opt6_7b(), par::ParallelConfig{1, 4, 1, 2}},
        {model::ModelSpec::gpt20b(), par::ParallelConfig{1, 2, 2, 4}},
    };
    for (const auto &setup : kSetups) {
        for (const auto &seq :
             {cost::SeqSpec{128, 32}, cost::SeqSpec{512, 128}}) {
            for (int chunk : {0, 96}) {
                const long peak = seq.inputLen + seq.outputLen;
                BudgetedServer s(setup.spec, setup.config, 3 * peak, chunk);
                sim::Rng rng(99);
                const auto workload =
                    wl::stationaryPoisson(0.3, 120.0, seq, rng);
                s.drive(workload);
                s.sim.run();
                EXPECT_EQ(s.violations, 0)
                    << setup.spec.name() << " " << setup.config.str()
                    << " chunk " << chunk;
                EXPECT_GT(s.boundaries, 0);
                EXPECT_EQ(s.requests.completedCount(),
                          static_cast<long>(workload.size()));
            }
        }
    }
}

TEST(MemoryAdmissionTest, FixedBAdmissionOvercommitsWhereBudgetDoesNot)
{
    // The regression that motivates the whole feature: long-input
    // requests under fixed-B admission (the reference budget observed
    // but not enforced) overshoot the KV budget the cost model promised;
    // token-budget admission with the same inputs never does.
    const long budget = 3000; // tokens; one 2048+128 request fits alone
    auto run = [&](bool enforce) {
        BudgetedServer s(model::ModelSpec::opt6_7b(),
                         par::ParallelConfig{1, 1, 4, 8}, budget,
                         /*chunk=*/0, enforce);
        wl::Workload workload;
        for (int i = 0; i < 8; ++i)
            workload.push_back(
                makeRequest(i, 0.1 * i, /*input=*/2048, /*output=*/128));
        s.drive(workload);
        s.sim.run();
        EXPECT_EQ(s.requests.completedCount(), 8);
        return s.violations;
    };
    EXPECT_GT(run(false), 0); // fixed-B packs 8 x 2176 tokens into 3000
    EXPECT_EQ(run(true), 0);  // budget admission holds the line
}

TEST(MemoryAdmissionTest, StartBatchRejectsOverBudgetBatch)
{
    BudgetedServer s(model::ModelSpec::opt6_7b(),
                     par::ParallelConfig{1, 1, 4, 8}, /*budget=*/1000,
                     /*chunk=*/0);
    std::vector<engine::ActiveRequest> batch(2);
    batch[0].request = makeRequest(1, 0.0, 512, 128); // peak 640
    batch[1].request = makeRequest(2, 0.0, 512, 128); // peak 640
    EXPECT_THROW(s.pipeline->startBatch(std::move(batch)),
                 std::invalid_argument);
}

// ---------------------------------------------------------------------
// Tentpole: the OOM-free invariant, full system across migrations
// ---------------------------------------------------------------------

using cluster::AvailabilityTrace;
using cluster::InstanceType;
using cluster::TraceEvent;
using cluster::TraceEventKind;

/** Joins, a preemption, a replacement join, and a second preemption. */
AvailabilityTrace
churnTrace()
{
    return AvailabilityTrace(
        "churn", 1200.0,
        {TraceEvent{0.0, TraceEventKind::Join, InstanceType::Spot, 8},
         TraceEvent{300.0, TraceEventKind::PreemptNotice, InstanceType::Spot,
                    1},
         TraceEvent{500.0, TraceEventKind::Join, InstanceType::Spot, 1},
         TraceEvent{800.0, TraceEventKind::PreemptNotice, InstanceType::Spot,
                    1}});
}

struct SystemInvariantResult
{
    long checks = 0;
    long violations = 0;
    int migrations = 0;
    long completed = 0;
    long arrived = 0;
};

/**
 * Run SpotServe over the churn trace and @p workload, asserting at every
 * iteration boundary of every replica that the reserved KV tokens stay
 * within the deployed configuration's budget, and that the implied
 * per-GPU bytes stay under the memory model's line.
 */
SystemInvariantResult
runSystemInvariant(const wl::Workload &workload, int chunk_tokens)
{
    const auto spec = model::ModelSpec::gpt20b();
    const auto trace = churnTrace();
    const cost::SeqSpec seq{};
    const cost::MemoryModel mem(spec, kParams);

    sim::Simulation sim;
    cluster::InstanceManager instances(sim, kParams);
    serving::RequestManager requests(sim);
    core::SpotServeOptions options;
    options.designArrivalRate = 0.35;
    options.prefillChunkTokens = chunk_tokens;
    core::SpotServeSystem system(sim, instances, requests, spec, kParams,
                                 seq, options);

    SystemInvariantResult out;
    system.setKvObserver([&](const engine::InferencePipeline &p) {
        ++out.checks;
        const long budget = mem.kvBudgetTokens(p.config());
        if (p.kvTokensReserved() > budget ||
            p.kvTokensHeld() > p.kvTokensReserved())
            ++out.violations;
        const double kv_bytes = static_cast<double>(p.kvTokensHeld()) *
                                spec.kvBytesPerToken() /
                                p.config().gpusPerPipeline();
        if (mem.weightShardBytes(p.config()) + kv_bytes +
                kParams.workspaceBytes +
                mem.migrationReserveBytes(p.config(), true) >
            kParams.gpu.memBytes)
            ++out.violations;
    });

    instances.setListener(&system);
    instances.loadTrace(trace);
    for (const auto &req : workload) {
        sim.schedule(req.arrival,
                     [&system, req] { system.onRequestArrival(req); });
    }
    sim.run(trace.duration() + 900.0);

    out.migrations = system.migrationsCompleted();
    out.completed = requests.completedCount();
    out.arrived = requests.arrivedCount();
    return out;
}

TEST(MemoryAdmissionTest, InvariantHoldsAcrossTracesAndMigrations)
{
    const cost::SeqSpec seq{};
    // Poisson, spike, and long-input workloads; the long-input one mixes
    // sequences up to 4x the planning length, which is exactly where
    // fixed-B admission would overshoot the planned footprint.
    auto poisson = [&] {
        sim::Rng rng(5);
        return wl::stationaryPoisson(0.3, 900.0, seq, rng);
    };
    auto spike = [&] {
        sim::Rng rng(6);
        return wl::fluctuating(
            [](sim::SimTime t) {
                return (t >= 300.0 && t < 420.0) ? 1.5 : 0.2;
            },
            1.0, 900.0, seq, rng);
    };
    auto longInput = [&] {
        sim::Rng rng(7);
        auto w = wl::stationaryPoisson(0.25, 900.0, seq, rng);
        const int lens[] = {512, 1024, 2048};
        for (std::size_t i = 0; i < w.size(); ++i)
            w[i].inputLen = lens[i % 3];
        return w;
    };

    int variant = 0;
    for (const auto &make : {std::function<wl::Workload()>(poisson),
                             std::function<wl::Workload()>(spike),
                             std::function<wl::Workload()>(longInput)}) {
        const auto workload = make();
        for (int chunk : {0, 256}) {
            const auto r = runSystemInvariant(workload, chunk);
            EXPECT_EQ(r.violations, 0)
                << "workload " << variant << " chunk " << chunk;
            EXPECT_GT(r.checks, 0);
            EXPECT_GE(r.migrations, 2); // initial + preemption-driven
            EXPECT_EQ(r.completed, r.arrived)
                << "workload " << variant << " chunk " << chunk;
        }
        ++variant;
    }
}

// ---------------------------------------------------------------------
// Chunked-prefill edge cases
// ---------------------------------------------------------------------

TEST(ChunkedPrefillTest, InputShorterThanChunkMatchesUnchunked)
{
    auto run = [&](int chunk) {
        BudgetedServer s(model::ModelSpec::opt6_7b(),
                         par::ParallelConfig{1, 1, 4, 8},
                         engine::kUnboundedKvTokens - 1, chunk);
        s.drive({makeRequest(1, 0.0, /*input=*/256, /*output=*/16)});
        s.sim.run();
        EXPECT_EQ(s.requests.completedCount(), 1);
        return s.completedAt[1];
    };
    EXPECT_DOUBLE_EQ(run(512), run(0));
}

TEST(ChunkedPrefillTest, ExactMultipleChunksPrefillWithoutRemainder)
{
    const auto spec = model::ModelSpec::opt6_7b();
    const cost::LatencyModel latency(spec, kParams);
    const par::ParallelConfig c{1, 1, 4, 8};
    const int input = 1024;
    const int chunk = 256;
    const int output = 4;

    BudgetedServer s(spec, c, engine::kUnboundedKvTokens - 1, chunk);
    s.drive({makeRequest(1, 0.0, input, output)});
    s.sim.run();
    ASSERT_EQ(s.requests.completedCount(), 1);
    EXPECT_EQ(s.pipeline->tokensCommitted(), output);

    // Exactly input/chunk prefill iterations (no zero-length remainder
    // chunk), then `output` decode iterations at growing context.
    double expected = 0.0;
    for (int prefix = 0; prefix < input; prefix += chunk)
        expected += latency.mixedIterTime(c, 1, chunk, prefix, 0, 0);
    for (int i = 0; i < output; ++i)
        expected += latency.mixedIterTime(c, 0, 0, 0, 1, input + i + 1);
    EXPECT_NEAR(s.completedAt[1], expected, expected * 1e-9);
}

TEST(ChunkedPrefillTest, HaltMidPrefillResumesCommittedChunksOnNewConfig)
{
    const auto spec = model::ModelSpec::opt6_7b();
    const cost::LatencyModel latency(spec, kParams);
    const par::ParallelConfig c1{1, 1, 4, 8};
    const int input = 1024;
    const int chunk = 256;

    BudgetedServer s(spec, c1, engine::kUnboundedKvTokens - 1, chunk);
    s.drive({makeRequest(1, 0.0, input, /*output=*/8)});
    // Run past the first chunk boundary, into the second chunk.
    const double first_chunk = latency.mixedIterTime(c1, 1, chunk, 0, 0, 0);
    s.sim.run(first_chunk * 1.5);
    s.pipeline->haltNow();
    auto drained = s.pipeline->takeBatch();
    ASSERT_EQ(drained.size(), 1u);
    // The in-flight second chunk is abandoned; the first one is
    // committed and survives the halt.
    EXPECT_EQ(drained[0].prefillTokens, chunk);
    EXPECT_EQ(drained[0].committedTokens, 0);
    EXPECT_FALSE(drained[0].prefilled);

    // Requeue with committed chunks intact (cache context migrated), and
    // resume on a *different* parallel configuration.
    BudgetedServer s2(spec, par::ParallelConfig{1, 2, 2, 4},
                      engine::kUnboundedKvTokens - 1, chunk);
    s2.requests.requeue(std::move(drained));
    s2.dispatch();
    s2.sim.run();
    ASSERT_EQ(s2.requests.completedCount(), 1);
    // Only the remaining three chunks were prefilled: no restart, and
    // the resumed run is exactly one chunk cheaper than a from-scratch
    // run on the new config.
    EXPECT_EQ(s2.pipeline->tokensCommitted(), 8);
    const par::ParallelConfig c2{1, 2, 2, 4};
    double decodes = 0.0;
    for (int i = 0; i < 8; ++i)
        decodes += latency.mixedIterTime(c2, 0, 0, 0, 1, input + i + 1);
    double resumed = decodes;
    for (int prefix = chunk; prefix < input; prefix += chunk)
        resumed += latency.mixedIterTime(c2, 1, chunk, prefix, 0, 0);
    double from_scratch = decodes;
    for (int prefix = 0; prefix < input; prefix += chunk)
        from_scratch += latency.mixedIterTime(c2, 1, chunk, prefix, 0, 0);
    EXPECT_NEAR(s2.completedAt[1], resumed, resumed * 1e-9);
    EXPECT_LT(s2.completedAt[1], from_scratch);
}

TEST(ChunkedPrefillTest, DecodeStallBoundedByOneChunk)
{
    // Regression for the head-of-line-blocking bound: with chunked
    // prefill, an incumbent's worst inter-token gap is one mixed
    // iteration (one chunk's prefill + KV re-read + one decode), not the
    // newcomer's whole prefill.
    const auto spec = model::ModelSpec::opt6_7b();
    const cost::LatencyModel latency(spec, kParams);
    const par::ParallelConfig c{1, 1, 4, 8};
    const int long_input = 2048;
    const int chunk = 256;

    auto maxGap = [&](int chunk_tokens) {
        BudgetedServer s(spec, c, engine::kUnboundedKvTokens - 1,
                         chunk_tokens);
        double last_commit = 0.0;
        int last_tokens = 0;
        double max_gap = 0.0;
        s.pipeline = nullptr; // rebuild with a commit-tracking observer
        engine::InferencePipeline::Callbacks cb;
        cb.onRequestComplete = [&s](const engine::ActiveRequest &r) {
            s.completedAt[r.request.id] = s.sim.now();
            s.requests.complete(r);
        };
        cb.onIdle = [&s](engine::InferencePipeline &) { s.dispatch(); };
        cb.onAdmit = [&s](engine::InferencePipeline &p, int free_slots) {
            return s.requests.admitAtBoundary(free_slots, p.freeKvTokens());
        };
        cb.onBoundary = [&](const engine::InferencePipeline &p) {
            for (const auto &r : p.batch()) {
                if (r.request.id != 1)
                    continue;
                if (r.committedTokens > last_tokens) {
                    if (last_tokens > 0)
                        max_gap =
                            std::max(max_gap, s.sim.now() - last_commit);
                    last_tokens = r.committedTokens;
                    last_commit = s.sim.now();
                }
            }
        };
        engine::BatchingOptions batching;
        batching.prefillChunkTokens = chunk_tokens;
        s.pipeline = std::make_unique<engine::InferencePipeline>(
            s.sim, s.latency, c, 0, std::move(cb), batching);
        s.drive({makeRequest(1, 0.0, 512, 64),
                 makeRequest(2, 2.0, long_input, 8)});
        s.sim.run();
        EXPECT_EQ(s.requests.completedCount(), 2);
        return max_gap;
    };

    const double unchunked = maxGap(0);
    const double chunked = maxGap(chunk);
    // One chunk's worth of mixed iteration bounds the chunked stall...
    const double bound =
        latency.mixedIterTime(c, 1, chunk, long_input - chunk, 1,
                              512 + 64 + 1);
    EXPECT_LE(chunked, bound * (1.0 + 1e-9));
    // ...while the unchunked stall pays the whole 2048-token prefill.
    EXPECT_GT(unchunked, chunked);
    EXPECT_GE(unchunked,
              latency.mixedIterTime(c, 1, long_input, 0, 1, 512 + 1));
}

// ---------------------------------------------------------------------
// FIFO fairness under tight budgets
// ---------------------------------------------------------------------

TEST(FifoFairnessTest, NothingSlipsPastABlockedHead)
{
    // Documented policy: strict FIFO head-blocking.  When the queue head
    // does not fit the remaining budget, smaller requests behind it are
    // NOT admitted past it — so a large request can wait, but can never
    // be starved by a stream of small ones.
    sim::Simulation sim;
    serving::RequestManager mgr(sim);
    mgr.submit(makeRequest(1, 0.0, 1000, 100)); // peak 1100
    mgr.submit(makeRequest(2, 1.0, 100, 10));   // peak 110
    mgr.submit(makeRequest(3, 2.0, 100, 10));   // peak 110

    // Head does not fit: nothing admits, even though the small ones fit.
    EXPECT_TRUE(mgr.admitAtBoundary(4, 1000).empty());
    EXPECT_EQ(mgr.midBatchAdmissions(), 0);
    EXPECT_EQ(mgr.pendingCount(), 3u);

    // Once the head fits, it leads and the rest follow in order.
    const auto got = mgr.admitAtBoundary(4, 1210);
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0].request.id, 1);
    EXPECT_EQ(got[1].request.id, 2);
    EXPECT_EQ(mgr.midBatchAdmissions(), 2);
}

TEST(FifoFairnessTest, LargeHeadIsNotStarvedUnderTightBudget)
{
    // End to end: small requests keep arriving behind a large one under
    // a budget that fits either the large request alone or a few small
    // ones.  The large request must be admitted (in arrival order) and
    // complete; admission order must equal arrival order throughout.
    const long budget = 1600; // large peak 1280; small peak 320
    BudgetedServer s(model::ModelSpec::opt6_7b(),
                     par::ParallelConfig{1, 1, 4, 8}, budget, /*chunk=*/0);
    wl::Workload workload;
    wl::RequestId id = 0;
    workload.push_back(makeRequest(id++, 0.0, 256, 64));  // small
    workload.push_back(makeRequest(id++, 0.1, 256, 64));  // small
    workload.push_back(makeRequest(id++, 0.2, 1024, 256)); // the large one
    for (int i = 0; i < 12; ++i)
        workload.push_back(makeRequest(id++, 0.3 + 0.5 * i, 256, 64));
    s.drive(workload);
    s.sim.run();

    EXPECT_EQ(s.requests.completedCount(), static_cast<long>(id));
    EXPECT_EQ(s.violations, 0);
    // Strict FIFO: admissions happen in arrival (id) order, so the large
    // request was not overtaken while it waited for headroom.
    ASSERT_EQ(s.admissionOrder.size(), static_cast<std::size_t>(id));
    for (std::size_t i = 0; i < s.admissionOrder.size(); ++i)
        EXPECT_EQ(s.admissionOrder[i], static_cast<wl::RequestId>(i));
}

// ---------------------------------------------------------------------
// Shared popAdmissible bookkeeping (bugfix)
// ---------------------------------------------------------------------

TEST(AdmissionBookkeepingTest, BothPopPathsAgreeAndCountConsistently)
{
    auto fill = [](serving::RequestManager &mgr) {
        mgr.submit(makeRequest(1, 0.0, 512, 128));
        mgr.submit(makeRequest(2, 1.0, 512, 128));
        mgr.submit(makeRequest(3, 2.0, 512, 128));
        mgr.submit(makeRequest(4, 3.0, 512, 128));
    };
    sim::Simulation sim;
    serving::RequestManager a(sim);
    serving::RequestManager b(sim);
    fill(a);
    fill(b);

    // Same budget, same slots: idle-batch formation and boundary
    // admission pop the identical FIFO prefix (shared popAdmissible)...
    const long budget = 2 * 640 + 100; // two requests fit
    const auto batch = a.nextBatch(3, budget);
    const auto admitted = b.admitAtBoundary(3, budget);
    ASSERT_EQ(batch.size(), 2u);
    ASSERT_EQ(admitted.size(), 2u);
    for (std::size_t i = 0; i < batch.size(); ++i)
        EXPECT_EQ(batch[i].request.id, admitted[i].request.id);

    // ...but only boundary admission counts as mid-batch admission.
    EXPECT_EQ(a.midBatchAdmissions(), 0);
    EXPECT_EQ(b.midBatchAdmissions(), 2);

    // Unbudgeted defaults remain slot-limited only.
    EXPECT_EQ(a.nextBatch(5).size(), 2u);
    EXPECT_EQ(b.admitAtBoundary(5).size(), 2u);
    EXPECT_EQ(b.midBatchAdmissions(), 4);
}

TEST(AdmissionBookkeepingTest, RequeuePreservesPrefillChunksOnly)
{
    sim::Simulation sim;
    serving::RequestManager mgr(sim);
    engine::ActiveRequest mid;
    mid.request = makeRequest(7, 0.0, 1024, 128);
    mid.prefillTokens = 512; // two committed chunks, no output yet
    mgr.requeue({mid});
    const auto got = mgr.nextBatch(1);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].prefillTokens, 512);

    engine::ActiveRequest decoded = mid;
    decoded.committedTokens = 3;
    EXPECT_THROW(mgr.requeue({decoded}), std::invalid_argument);
}

// ---------------------------------------------------------------------
// Least-loaded replica balancing
// ---------------------------------------------------------------------

struct TestSystem : serving::BaseServingSystem
{
    TestSystem(sim::Executor &s, cluster::InstanceManager &im,
               serving::RequestManager &rm, const model::ModelSpec &spec)
        : BaseServingSystem(s, im, rm, spec, kParams, cost::SeqSpec{})
    {
    }
    std::string name() const override { return "TestSystem"; }
    void onInstanceReady(const cluster::Instance &) override {}
    void onPreemptionNotice(const cluster::Instance &, sim::SimTime) override
    {
    }
    void onInstancePreempted(const cluster::Instance &) override {}
    void onInstanceReleased(const cluster::Instance &) override {}

    using BaseServingSystem::admitAtBoundary;
    using BaseServingSystem::deployment;
    using BaseServingSystem::dispatchAll;
    using BaseServingSystem::installDeployment;
    using BaseServingSystem::packedMesh;
    using BaseServingSystem::replicaKvBudget;
    using BaseServingSystem::setMemOptReserve;
};

TEST(ReplicaBalancingTest, IdleBatchFormationSpreadsAcrossReplicas)
{
    const auto spec = model::ModelSpec::opt6_7b();
    sim::Simulation sim;
    cluster::InstanceManager instances(sim, kParams);
    serving::RequestManager requests(sim);
    TestSystem system(sim, instances, requests, spec);

    instances.loadTrace(AvailabilityTrace(
        "steady", 100.0,
        {TraceEvent{0.0, TraceEventKind::Join, InstanceType::Spot, 2}}));
    sim.run(1.0);

    const par::ParallelConfig config{2, 2, 2, 8};
    system.installDeployment(config,
                             system.packedMesh(config,
                                               instances.usableInstances()));

    // Six requests pending before any dispatch: the old code would stuff
    // all six into replica 0 (B = 8); balanced formation deals 3 + 3.
    for (int i = 0; i < 6; ++i)
        requests.submit(makeRequest(i, 0.0));
    system.dispatchAll();

    ASSERT_EQ(system.deployment().pipelines.size(), 2u);
    EXPECT_EQ(system.deployment().pipelines[0]->batch().size(), 3u);
    EXPECT_EQ(system.deployment().pipelines[1]->batch().size(), 3u);
    EXPECT_TRUE(requests.pendingEmpty());
}

TEST(ReplicaBalancingTest, OversizedRequestIsRejectedNotHeadBlocking)
{
    // A request whose worst-case KV exceeds a whole replica's budget can
    // never be served under this configuration; it must be dropped with
    // a rejection count, not left to head-block the strict-FIFO queue
    // (which would starve everything behind it forever).
    const auto spec = model::ModelSpec::opt6_7b();
    sim::Simulation sim;
    cluster::InstanceManager instances(sim, kParams);
    serving::RequestManager requests(sim);
    TestSystem system(sim, instances, requests, spec);

    instances.loadTrace(AvailabilityTrace(
        "steady", 100.0,
        {TraceEvent{0.0, TraceEventKind::Join, InstanceType::Spot, 2}}));
    sim.run(1.0);
    const par::ParallelConfig config{2, 2, 2, 8};
    system.installDeployment(config,
                             system.packedMesh(config,
                                               instances.usableInstances()));
    const long budget = system.replicaKvBudget(config);

    system.onRequestArrival(makeRequest(
        0, sim.now(), static_cast<int>(budget) + 1, 100)); // unservable
    system.onRequestArrival(makeRequest(1, sim.now()));    // normal
    EXPECT_EQ(requests.rejectedCount(), 1);
    sim.run();
    EXPECT_EQ(requests.completedCount(), 1);
    EXPECT_EQ(requests.completions().front().id, 1);
}

// ---------------------------------------------------------------------
// Optimistic admission: predictor, eviction, watermarks
// ---------------------------------------------------------------------

/**
 * Engine-level harness for the optimistic mode: one pipeline fed from a
 * RequestManager with predictor-charged admission, eviction wired back
 * into the queue through the shared restart path, and the *held*-KV
 * invariant (the one optimistic mode guarantees) checked at every
 * boundary.
 */
struct OptimisticServer
{
    sim::Simulation sim;
    model::ModelSpec spec;
    cost::LatencyModel latency;
    par::ParallelConfig config;
    serving::RequestManager requests{sim};
    std::unique_ptr<engine::InferencePipeline> pipeline;

    engine::KvAdmissionMode mode;
    long budget;
    int blockTokens;
    long budgetBlocks;
    long boundaries = 0;
    long violations = 0;
    long blockViolations = 0;
    /** Boundaries where a block = 1 pipeline's block-space accessors
     *  diverged from the token accessors they must degenerate to. */
    long tokenEquivalenceViolations = 0;
    int peakConcurrency = 0;
    std::map<wl::RequestId, sim::SimTime> completedAt;

    OptimisticServer(const model::ModelSpec &model_spec,
                     const par::ParallelConfig &cfg, long kv_budget,
                     int chunk_tokens, engine::KvAdmissionMode admission_mode,
                     int block_tokens = 1)
        : spec(model_spec), latency(spec, kParams), config(cfg),
          mode(admission_mode), budget(kv_budget),
          // The shared engine rule: budgets smaller than one block
          // degrade to token accounting.
          blockTokens(engine::effectiveKvBlockTokens(kv_budget,
                                                     block_tokens)),
          budgetBlocks(kv_budget == engine::kUnboundedKvTokens
                           ? engine::kUnboundedKvBlocks
                           : kv_budget / blockTokens)
    {
        engine::InferencePipeline::Callbacks cb;
        cb.onRequestComplete = [this](const engine::ActiveRequest &r) {
            completedAt[r.request.id] = sim.now();
            requests.complete(r);
        };
        cb.onIdle = [this](engine::InferencePipeline &) { dispatch(); };
        cb.onAdmit = [this](engine::InferencePipeline &p, int free_slots) {
            return requests.admitAtBoundary(free_slots, p.freeKvBlocks(),
                                            mode, engine::kUnboundedKvBlocks,
                                            blockTokens);
        };
        cb.onBoundary = [this](const engine::InferencePipeline &p) {
            ++boundaries;
            // Optimistic mode promises the *held* tokens never exceed the
            // budget at a boundary (worst-case reservations may).
            if (p.kvTokensHeld() > budget)
                ++violations;
            // The paged invariant: ceil-rounded held blocks never exceed
            // the whole blocks the budget can actually hand out.
            if (p.kvBlocksHeld() > budgetBlocks)
                ++blockViolations;
            // At block = 1 every block accessor must equal the token
            // accessor it generalises — checked against live batches,
            // where a per-chunk-rounding regression would show up.
            if (blockTokens == 1 &&
                (p.kvBlocksHeld() != p.kvTokensHeld() ||
                 p.kvBlocksCharged() != p.kvTokensCharged() ||
                 p.kvBlocksReserved() != p.kvTokensReserved() ||
                 p.freeKvBlocks() != p.freeKvTokens()))
                ++tokenEquivalenceViolations;
            peakConcurrency = std::max(peakConcurrency,
                                       static_cast<int>(p.batch().size()));
        };
        cb.onEvict = [this](engine::InferencePipeline &,
                            std::vector<engine::ActiveRequest> evicted) {
            requests.requeueRestarted(std::move(evicted));
        };
        engine::BatchingOptions batching;
        batching.kvBudgetTokens = budget;
        batching.kvBlockTokens = blockTokens;
        batching.prefillChunkTokens = chunk_tokens;
        batching.kvAdmissionMode = mode;
        pipeline = std::make_unique<engine::InferencePipeline>(
            sim, latency, config, 0, std::move(cb), batching);
    }

    void dispatch()
    {
        if (!pipeline->idle() || pipeline->haltPending() ||
            requests.pendingEmpty()) {
            return;
        }
        auto batch =
            requests.nextBatch(config.batch, pipeline->freeKvBlocks(), mode,
                               engine::kUnboundedKvBlocks, blockTokens);
        if (!batch.empty())
            pipeline->startBatch(std::move(batch));
    }

    void submit(const wl::Request &r)
    {
        requests.submit(r);
        dispatch();
    }

    void drive(const wl::Workload &workload)
    {
        for (const auto &req : workload)
            sim.schedule(req.arrival, [this, req] { submit(req); });
    }
};

TEST(OutputPredictorTest, ColdStartFallsBackToCap)
{
    serving::OutputLengthPredictor p;
    EXPECT_FALSE(p.warm());
    EXPECT_EQ(p.predict(512), 512); // cold: the cap, i.e. Reserve behavior
    for (int i = 0; i < 15; ++i) {
        p.observe(16);
        EXPECT_EQ(p.predict(512), 512) << "still cold after " << i + 1;
    }
    p.observe(16);
    EXPECT_TRUE(p.warm());
    // Warm on a short-output workload: far below the cap, above the data.
    EXPECT_LE(p.predict(512), 64);
    EXPECT_GE(p.predict(512), 16);
    // The prediction is clamped to the per-request cap.
    EXPECT_EQ(p.predict(8), 8);
}

TEST(OutputPredictorTest, ConstantLengthsPredictExactly)
{
    // A fixed-S_out workload (the paper's default) must predict exactly
    // its length: optimistic charges then equal the worst case and the
    // engine stays on the Reserve schedule.
    serving::OutputLengthPredictor p;
    for (int i = 0; i < 32; ++i)
        p.observe(128);
    EXPECT_EQ(p.predict(128), 128);
    EXPECT_EQ(p.predict(512), 128);
}

TEST(OutputPredictorTest, TracksAHighQuantileOfMixedLengths)
{
    serving::OutputLengthPredictor p;
    for (int i = 0; i < 200; ++i)
        p.observe(i % 2 == 0 ? 10 : 100);
    // The estimate settles near (slightly above) the upper mode: a high
    // quantile plus deviation headroom, still far below the 512 cap.
    EXPECT_GE(p.predict(512), 60);
    EXPECT_LE(p.predict(512), 200);
}

TEST(OptimisticAdmissionTest, ShortOutputsUnderLargeCapBeatReserve)
{
    // The acceptance scenario: a short-output/large-cap trace on a tight
    // budget.  Reserve charges every request input 512 + cap 512 = 1024
    // tokens and caps concurrency at 3; optimistic learns outputs finish
    // near 32 tokens and packs the replica, admitting strictly higher
    // peak concurrency and completing strictly more requests per unit
    // time — while the held-KV <= budget invariant holds at every
    // boundary and every request still completes (no starvation).
    const long budget = 3 * 1024;
    auto workload = [] {
        sim::Rng rng(42);
        auto w = wl::stationaryPoisson(2.0, 240.0, cost::SeqSpec{512, 128},
                                       rng);
        wl::capOutputs(w, /*cap=*/512, /*min=*/16, /*max=*/48, rng);
        return w;
    }();
    struct Outcome
    {
        long completedAtTraceEnd = 0;
        long completedFinal = 0;
        double makespan = 0.0;
        int peakConcurrency = 0;
        long violations = 0;
    };
    auto run = [&](engine::KvAdmissionMode mode) {
        OptimisticServer s(model::ModelSpec::opt6_7b(),
                           par::ParallelConfig{1, 1, 4, 8}, budget,
                           /*chunk=*/0, mode);
        s.drive(workload);
        s.sim.run(240.0);
        Outcome o;
        o.completedAtTraceEnd = s.requests.completedCount();
        s.sim.run();
        o.completedFinal = s.requests.completedCount();
        for (const auto &[id, t] : s.completedAt)
            o.makespan = std::max(o.makespan, t);
        o.peakConcurrency = s.peakConcurrency;
        o.violations = s.violations;
        return o;
    };
    const auto reserve = run(engine::KvAdmissionMode::Reserve);
    const auto optimistic = run(engine::KvAdmissionMode::Optimistic);

    const long n = static_cast<long>(workload.size());
    ASSERT_GT(n, 60);
    // No starvation in either mode; the invariant holds in both.
    EXPECT_EQ(reserve.completedFinal, n);
    EXPECT_EQ(optimistic.completedFinal, n);
    EXPECT_EQ(reserve.violations, 0);
    EXPECT_EQ(optimistic.violations, 0);
    // Reserve's concurrency collapses to budget/peak = 3; optimistic
    // admits strictly more...
    EXPECT_EQ(reserve.peakConcurrency, 3);
    EXPECT_GT(optimistic.peakConcurrency, reserve.peakConcurrency);
    // ...and turns that into strictly higher goodput: more completions
    // within the trace window and an earlier finish overall.
    EXPECT_GT(optimistic.completedAtTraceEnd, reserve.completedAtTraceEnd);
    EXPECT_LT(optimistic.makespan, reserve.makespan);
}

TEST(OptimisticAdmissionTest, HeldInvariantAcrossWorkloadShapes)
{
    // Poisson, spike, and long-input early-stopping workloads, chunked
    // and unchunked: held KV stays under the budget at every boundary
    // and every request completes, evictions or not.
    const cost::SeqSpec seq{256, 64};
    auto poisson = [&] {
        sim::Rng rng(15);
        auto w = wl::stationaryPoisson(0.8, 180.0, seq, rng);
        wl::capOutputs(w, 256, 8, 64, rng);
        return w;
    };
    auto spike = [&] {
        sim::Rng rng(16);
        auto w = wl::fluctuating(
            [](sim::SimTime t) {
                return (t >= 60.0 && t < 100.0) ? 3.0 : 0.4;
            },
            1.0, 180.0, seq, rng);
        wl::capOutputs(w, 256, 8, 64, rng);
        return w;
    };
    auto longInput = [&] {
        sim::Rng rng(17);
        auto w = wl::stationaryPoisson(0.5, 180.0, seq, rng);
        wl::capOutputs(w, 256, 8, 64, rng);
        const int lens[] = {128, 512, 1024};
        for (std::size_t i = 0; i < w.size(); ++i)
            w[i].inputLen = lens[i % 3];
        return w;
    };

    int variant = 0;
    for (const auto &make : {std::function<wl::Workload()>(poisson),
                             std::function<wl::Workload()>(spike),
                             std::function<wl::Workload()>(longInput)}) {
        const auto workload = make();
        for (int chunk : {0, 128}) {
            OptimisticServer s(model::ModelSpec::opt6_7b(),
                               par::ParallelConfig{1, 1, 4, 8},
                               /*budget=*/2600, chunk,
                               engine::KvAdmissionMode::Optimistic);
            s.drive(workload);
            s.sim.run();
            EXPECT_EQ(s.violations, 0)
                << "workload " << variant << " chunk " << chunk;
            EXPECT_GT(s.boundaries, 0);
            EXPECT_EQ(s.requests.completedCount(),
                      static_cast<long>(workload.size()))
                << "workload " << variant << " chunk " << chunk;
        }
        ++variant;
    }
}

TEST(OptimisticAdmissionTest, NoLivelockUnderSustainedOverload)
{
    // Sustained overload with a deceptive length mix: most outputs are
    // tiny, a quarter run to the full cap, so the warm predictor
    // under-charges the long ones and evictions are inevitable.  The
    // storm guard (evicted requests re-admit at their full worst case)
    // plus the protected oldest member must keep every admitted request
    // completing — no livelock, no starvation — with held KV under the
    // budget throughout.
    const long budget = 1200; // two full-cap peaks (512) plus slack
    OptimisticServer s(model::ModelSpec::opt6_7b(),
                       par::ParallelConfig{1, 1, 4, 8}, budget, /*chunk=*/0,
                       engine::KvAdmissionMode::Optimistic);
    wl::Workload workload;
    for (int i = 0; i < 80; ++i) {
        const int actual = (i % 4 == 3) ? 256 : 12;
        workload.push_back(
            makeCapped(i, 0.8 * i, /*input=*/256, actual, /*cap=*/256));
    }
    s.drive(workload);
    s.sim.run();

    EXPECT_EQ(s.violations, 0);
    EXPECT_EQ(s.requests.completedCount(), 80);
    EXPECT_GT(s.pipeline->evictionsPerformed(), 0);
    // Eviction converts a request to worst-case charging, so each one is
    // evicted at most a handful of times — far below the eviction-storm
    // regime where victims cycle forever.
    for (const auto &c : s.requests.completions())
        EXPECT_LE(c.restarts, 3) << "request " << c.id;
}

TEST(OptimisticAdmissionTest, MispredictionBurstEvictsAndRecovers)
{
    // Prime the predictor on short outputs, then hit the replica with a
    // burst whose outputs all run to the cap.  The optimistic charges
    // admit too much; watermark eviction must shed the youngest victims,
    // keep held KV under the budget at every boundary, and still finish
    // the whole burst.
    const long budget = 1400;
    OptimisticServer s(model::ModelSpec::opt6_7b(),
                       par::ParallelConfig{1, 1, 4, 8}, budget, /*chunk=*/0,
                       engine::KvAdmissionMode::Optimistic);
    for (int i = 0; i < 32; ++i)
        s.requests.outputPredictor().observe(16);
    ASSERT_TRUE(s.requests.outputPredictor().warm());

    wl::Workload burst;
    for (int i = 0; i < 10; ++i)
        burst.push_back(
            makeCapped(i, 0.05 * i, /*input=*/256, /*actual=*/240,
                       /*cap=*/256));
    s.drive(burst);
    s.sim.run();

    EXPECT_EQ(s.violations, 0);
    EXPECT_EQ(s.requests.completedCount(), 10);
    EXPECT_GT(s.pipeline->evictionsPerformed(), 0);
    // The evicted requests really were requeued and finished (restart
    // counts surface in the completion records).
    long restarted = 0;
    for (const auto &c : s.requests.completions())
        restarted += c.restarts > 0 ? 1 : 0;
    EXPECT_GT(restarted, 0);
}

TEST(OptimisticAdmissionTest, DecodePriorityYieldsPrefillUnderPressure)
{
    // Deterministic watermark-pressure scenario (hand-built batch): two
    // deep decodes approaching the high watermark share the replica with
    // a newcomer still in chunked prefill.  The moment the next step's
    // growth would cross the high watermark, the prefill must yield its
    // mixed-iteration slot (decode-priority) so the incumbents keep
    // committing; the held tokens never exceed the budget.
    //   budget 1500 -> high 1407, low 1220 (deriveKvWatermarks, B=8).
    const long budget = 1500;
    OptimisticServer s(model::ModelSpec::opt6_7b(),
                       par::ParallelConfig{1, 1, 4, 8}, budget,
                       /*chunk=*/16, engine::KvAdmissionMode::Optimistic);
    std::vector<engine::ActiveRequest> batch(3);
    // Two incumbents: 512 input, 90 of 200 output tokens committed,
    // predicted to stop at 95 (held 602, charged 607 each).
    for (int i = 0; i < 2; ++i) {
        batch[i].request = makeCapped(i, 0.0, 512, 200, 512);
        batch[i].committedTokens = 90;
        batch[i].predictedOutputTokens = 95;
    }
    // The newcomer: 256 input in 16-token chunks, predicted 24 output
    // (charged 280; total charge 1494 <= budget).
    batch[2].request = makeCapped(2, 1.0, 256, 24, 256);
    batch[2].predictedOutputTokens = 24;
    s.pipeline->startBatch(std::move(batch));
    s.sim.run();

    EXPECT_EQ(s.violations, 0);
    EXPECT_EQ(s.requests.completedCount(), 3);
    // The prefill yielded at least once while the incumbents pushed the
    // held tokens toward the watermark.
    EXPECT_GT(s.pipeline->prefillYields(), 0);
}

TEST(OptimisticAdmissionTest, EvictionClearsYieldWhenLastDecoderLeaves)
{
    // Regression: watermark pressure defers a mid-prefill oldest member
    // while deep decodes push the held tokens to the budget; the eviction
    // that sheds a decoder must re-decide the yield so the surviving
    // prefiller is not left frozen (the old single-decision code could
    // strand a batch with nothing runnable and schedule an empty
    // iteration).
    //   budget 1900 -> high 1782 (deriveKvWatermarks, B=8).
    const long budget = 1900;
    OptimisticServer s(model::ModelSpec::opt6_7b(),
                       par::ParallelConfig{1, 1, 4, 8}, budget,
                       /*chunk=*/128, engine::KvAdmissionMode::Optimistic);
    std::vector<engine::ActiveRequest> batch(3);
    // Oldest member: mid-prefill (256 of 512 committed), short output.
    batch[0].request = makeCapped(0, 0.0, 512, 24, 256);
    batch[0].prefillTokens = 256;
    batch[0].predictedOutputTokens = 24;
    // Two deep decodes predicted to stop at 160 but running to 400.
    for (int i = 1; i < 3; ++i) {
        batch[i].request = makeCapped(i, static_cast<double>(i), 500, 400,
                                      600);
        batch[i].committedTokens = 150;
        batch[i].predictedOutputTokens = 160;
    }
    s.pipeline->startBatch(std::move(batch));
    s.sim.run();

    EXPECT_EQ(s.violations, 0);
    EXPECT_EQ(s.requests.completedCount(), 3);
    EXPECT_GT(s.pipeline->prefillYields(), 0);
    EXPECT_GE(s.pipeline->evictionsPerformed(), 1);
}

// ---------------------------------------------------------------------
// Optimistic admission at the system level (migrations, mid-prefill)
// ---------------------------------------------------------------------

/**
 * Run SpotServe (optimistic admission, default-on) over the churn trace
 * with an early-stopping workload, asserting the held-KV invariant at
 * every boundary of every replica and full completion across
 * preemption-driven migrations.
 */
SystemInvariantResult
runOptimisticSystemInvariant(const wl::Workload &workload, int chunk_tokens)
{
    const auto spec = model::ModelSpec::gpt20b();
    const auto trace = churnTrace();
    const cost::SeqSpec seq{};
    const cost::MemoryModel mem(spec, kParams);

    sim::Simulation sim;
    cluster::InstanceManager instances(sim, kParams);
    serving::RequestManager requests(sim);
    core::SpotServeOptions options;
    options.designArrivalRate = 0.35;
    options.prefillChunkTokens = chunk_tokens;
    EXPECT_EQ(options.kvAdmissionMode, engine::KvAdmissionMode::Optimistic)
        << "optimistic admission should be the default";
    core::SpotServeSystem system(sim, instances, requests, spec, kParams,
                                 seq, options);

    SystemInvariantResult out;
    system.setKvObserver([&](const engine::InferencePipeline &p) {
        ++out.checks;
        const long budget = mem.kvBudgetTokens(p.config());
        if (p.kvTokensHeld() > budget)
            ++out.violations;
        const double kv_bytes = static_cast<double>(p.kvTokensHeld()) *
                                spec.kvBytesPerToken() /
                                p.config().gpusPerPipeline();
        if (mem.weightShardBytes(p.config()) + kv_bytes +
                kParams.workspaceBytes +
                mem.migrationReserveBytes(p.config(), true) >
            kParams.gpu.memBytes)
            ++out.violations;
    });

    instances.setListener(&system);
    instances.loadTrace(trace);
    for (const auto &req : workload) {
        sim.schedule(req.arrival,
                     [&system, req] { system.onRequestArrival(req); });
    }
    sim.run(trace.duration() + 900.0);

    out.migrations = system.migrationsCompleted();
    out.completed = requests.completedCount();
    out.arrived = requests.arrivedCount();
    return out;
}

TEST(OptimisticSystemTest, InvariantHoldsAcrossMigrationsWithEarlyStopping)
{
    // Early-stopping workload (cap 4x the planning output) across the
    // churn trace, unchunked and chunked — the chunked variant drives
    // evicted-and-requeued work and mid-prefill requests through the
    // migration inheritance path (committed chunks ride the inherited
    // batch; optimistic trimming charges them under the active mode).
    auto make = [] {
        sim::Rng rng(21);
        auto w = wl::stationaryPoisson(0.3, 900.0, cost::SeqSpec{}, rng);
        wl::capOutputs(w, /*cap=*/512, /*min=*/16, /*max=*/128, rng);
        return w;
    };
    const auto workload = make();
    for (int chunk : {0, 256}) {
        const auto r = runOptimisticSystemInvariant(workload, chunk);
        EXPECT_EQ(r.violations, 0) << "chunk " << chunk;
        EXPECT_GT(r.checks, 0);
        EXPECT_GE(r.migrations, 2); // initial + preemption-driven
        EXPECT_EQ(r.completed, r.arrived) << "chunk " << chunk;
    }
}

TEST(ReplicaBalancingTest, BoundaryAdmissionRejectsUnservablePeaks)
{
    // Regression: a request whose worst-case peak exceeds the whole
    // replica budget must be rejected on the *boundary* admission path
    // too, even when its optimistic charge would fit — otherwise its
    // fate depends on which admission path reaches it first, and once
    // admitted it could outgrow the budget as the protected oldest
    // member with no eviction able to help.
    const auto spec = model::ModelSpec::opt6_7b();
    sim::Simulation sim;
    cluster::InstanceManager instances(sim, kParams);
    serving::RequestManager requests(sim);
    TestSystem system(sim, instances, requests, spec);

    instances.loadTrace(AvailabilityTrace(
        "steady", 100.0,
        {TraceEvent{0.0, TraceEventKind::Join, InstanceType::Spot, 2}}));
    sim.run(1.0);
    // Single replica: no idle peer to balance onto, so the boundary
    // admission path is exercised in isolation.
    const par::ParallelConfig config{1, 2, 2, 8};
    system.installDeployment(config,
                             system.packedMesh(config,
                                               instances.usableInstances()));
    const long budget = system.replicaKvBudget(config);

    // Warm predictor expecting ~16-token outputs, so the optimistic
    // charge of the oversized request would comfortably fit the budget.
    for (int i = 0; i < 32; ++i)
        requests.outputPredictor().observe(16);
    requests.submit(makeCapped(0, sim.now(), 512, 16,
                               static_cast<int>(budget)));
    ASSERT_GT(engine::ActiveRequest{requests.pending().front()}
                  .kvPeakTokens(),
              budget);

    auto &pipeline = *system.deployment().pipelines[0];
    const auto admitted = system.admitAtBoundary(pipeline, 4);
    EXPECT_TRUE(admitted.empty());
    EXPECT_EQ(requests.rejectedCount(), 1);
    EXPECT_TRUE(requests.pendingEmpty());

    // The multi-pop gap: an oversized request *behind* a normal head
    // must not slip through when the pop exposes it mid-call — the
    // shared pop head-blocks on it, and the next admission pass rejects
    // it once it is the head.
    requests.submit(makeCapped(1, sim.now(), 512, 16, 128)); // normal
    requests.submit(makeCapped(2, sim.now(), 512, 16,
                               static_cast<int>(budget))); // oversized
    requests.submit(makeCapped(3, sim.now(), 512, 16, 128)); // normal
    const auto second = system.admitAtBoundary(pipeline, 4);
    ASSERT_EQ(second.size(), 1u);
    EXPECT_EQ(second[0].request.id, 1);
    EXPECT_EQ(requests.rejectedCount(), 1); // not yet at the head check
    const auto third = system.admitAtBoundary(pipeline, 4);
    ASSERT_EQ(third.size(), 1u);
    EXPECT_EQ(third[0].request.id, 3);
    EXPECT_EQ(requests.rejectedCount(), 2); // oversized dropped, not admitted
}

TEST(ReplicaBalancingTest, BudgetTracksTheMigrationReserveMode)
{
    // The enforced budget must deduct the same migration reserve the
    // feasibility check assumed: ablating the memory-optimised planner
    // (naive double buffering) shrinks it.
    const auto spec = model::ModelSpec::opt6_7b();
    sim::Simulation sim;
    cluster::InstanceManager instances(sim, kParams);
    serving::RequestManager requests(sim);
    TestSystem system(sim, instances, requests, spec);
    // P*M = 8: the shard is small enough that even the naive
    // double-buffered reserve leaves positive KV headroom.
    const par::ParallelConfig config{1, 2, 4, 8};
    const long opt = system.replicaKvBudget(config);
    system.setMemOptReserve(false);
    const long naive = system.replicaKvBudget(config);
    EXPECT_LT(naive, opt);
    const cost::MemoryModel mem(spec, kParams);
    EXPECT_EQ(opt, mem.kvBudgetTokens(config, true));
    EXPECT_EQ(naive, mem.kvBudgetTokens(config, false));
}

// ---------------------------------------------------------------------
// Block-granular (paged) KV accounting
// ---------------------------------------------------------------------

TEST(BlockAdmissionTest, TokenGranularAdmissionOverpromisesPagedBlocks)
{
    // The regression that motivates the block budget: a 1000-token
    // budget holds floor(1000/16) = 62 whole 16-token blocks, but ten
    // 100-token requests — which token accounting happily admits at
    // exactly 10 x 100 = 1000 tokens — each occupy ceil(100/16) = 7
    // blocks, i.e. 70 blocks: a real paged allocator OOMs on a batch
    // the token invariant calls safe.  Block-granular admission charges
    // the rounded blocks up front and never exceeds 62.
    const long budget = 1000;
    const par::ParallelConfig cfg{1, 1, 4, 12};
    wl::Workload workload;
    for (int i = 0; i < 10; ++i)
        workload.push_back(makeRequest(i, 0.01 * i, /*input=*/90,
                                       /*output=*/10)); // peak 100 tokens
    auto run = [&](int pipeline_blk) {
        // The observer always checks the 16-token paged invariant,
        // whatever granularity the pipeline enforces.
        BudgetedServer s(model::ModelSpec::opt6_7b(), cfg, budget,
                         /*chunk=*/0, /*enforce=*/true, pipeline_blk,
                         /*observe_block_tokens=*/16);
        s.drive(workload);
        s.sim.run();
        EXPECT_EQ(s.requests.completedCount(), 10);
        EXPECT_EQ(s.violations, 0); // token invariant holds either way
        return s.blockViolations;
    };
    EXPECT_GT(run(1), 0);  // token-granular admission breaks the paged line
    EXPECT_EQ(run(16), 0); // block-granular admission holds it
}

TEST(BlockAdmissionTest, DegenerateBudgetKeepsTokenGranularity)
{
    // A (loudly warned) budget smaller than one block — the no-headroom
    // clamp path — must degrade to token granularity, not round up to a
    // whole block: a 10-token budget under 16-token blocks would
    // otherwise become a 1-block = 16-token budget and admit a request
    // into a replica the memory model says has no real headroom.
    BudgetedServer s(model::ModelSpec::opt6_7b(),
                     par::ParallelConfig{1, 1, 4, 8}, /*budget=*/10,
                     /*chunk=*/0, /*enforce=*/true, /*block=*/16);
    EXPECT_EQ(s.pipeline->kvBlockTokens(), 1);
    EXPECT_EQ(s.pipeline->kvBudgetBlocks(), 10);
    // Peak 12 tokens: fits one 16-token block, but NOT the 10 tokens
    // that actually exist — it must starve exactly as the token path
    // always did.
    s.drive({makeRequest(1, 0.0, /*input=*/8, /*output=*/4)});
    s.sim.run();
    EXPECT_EQ(s.requests.completedCount(), 0);
    EXPECT_EQ(s.requests.pendingCount(), 1u);
    EXPECT_EQ(s.violations, 0);
}

TEST(BlockAdmissionTest, BlockOneReproducesTokenPathExactly)
{
    // kvBlockTokens = 1 is the ablation that must reproduce the
    // token-granular path bit-for-bit: identical admission order,
    // identical completion times, identical boundary counts — and the
    // block-space accessors must equal the token accessors at every
    // boundary.
    const long budget = 2600;
    auto workload = [] {
        sim::Rng rng(33);
        auto w = wl::stationaryPoisson(0.8, 120.0, cost::SeqSpec{256, 64},
                                       rng);
        wl::capOutputs(w, 256, 8, 64, rng);
        return w;
    }();
    auto run = [&](int blk, long &boundaries,
                   std::vector<wl::RequestId> &order) {
        OptimisticServer s(model::ModelSpec::opt6_7b(),
                           par::ParallelConfig{1, 1, 4, 8}, budget,
                           /*chunk=*/128,
                           engine::KvAdmissionMode::Optimistic, blk);
        if (blk == 1) {
            // At block = 1 the block budget degenerates to the token
            // budget the PR 3 path enforced.
            EXPECT_EQ(s.pipeline->kvBudgetBlocks(), budget);
        }
        s.drive(workload);
        s.sim.run();
        if (blk == 1)
            EXPECT_EQ(s.tokenEquivalenceViolations, 0);
        boundaries = s.boundaries;
        order.clear();
        for (const auto &[id, t] : s.completedAt)
            order.push_back(id);
        return s.completedAt;
    };
    long b1 = 0, b2 = 0;
    std::vector<wl::RequestId> o1, o2;
    const auto token_times = run(1, b1, o1);
    // A second, independent run through the same block=1 path must be
    // bit-identical (pins determinism of the ablation baseline)...
    const auto again = run(1, b2, o2);
    EXPECT_EQ(b1, b2);
    ASSERT_EQ(token_times.size(), again.size());
    for (const auto &[id, t] : token_times) {
        auto it = again.find(id);
        ASSERT_NE(it, again.end());
        EXPECT_DOUBLE_EQ(t, it->second) << "request " << id;
    }
    EXPECT_EQ(token_times.size(), workload.size());
}

TEST(BlockAdmissionTest, HeldBlocksInvariantEngineMatrix)
{
    // Engine-level matrix: Poisson / spike / long-input early-stopping
    // workloads, chunked and unchunked, both admission modes, at the
    // paged block size: ceil-rounded held blocks never exceed the whole
    // blocks the budget contains, and every request completes.
    const cost::SeqSpec seq{256, 64};
    auto poisson = [&] {
        sim::Rng rng(51);
        auto w = wl::stationaryPoisson(0.8, 180.0, seq, rng);
        wl::capOutputs(w, 256, 8, 64, rng);
        return w;
    };
    auto spike = [&] {
        sim::Rng rng(52);
        auto w = wl::fluctuating(
            [](sim::SimTime t) {
                return (t >= 60.0 && t < 100.0) ? 3.0 : 0.4;
            },
            1.0, 180.0, seq, rng);
        wl::capOutputs(w, 256, 8, 64, rng);
        return w;
    };
    auto longInput = [&] {
        sim::Rng rng(53);
        auto w = wl::stationaryPoisson(0.5, 180.0, seq, rng);
        wl::capOutputs(w, 256, 8, 64, rng);
        const int lens[] = {128, 512, 1024};
        for (std::size_t i = 0; i < w.size(); ++i)
            w[i].inputLen = lens[i % 3];
        return w;
    };

    const int blk = 16;
    int variant = 0;
    for (const auto &make : {std::function<wl::Workload()>(poisson),
                             std::function<wl::Workload()>(spike),
                             std::function<wl::Workload()>(longInput)}) {
        const auto workload = make();
        for (int chunk : {0, 128}) {
            for (const auto mode : {engine::KvAdmissionMode::Reserve,
                                    engine::KvAdmissionMode::Optimistic}) {
                OptimisticServer s(model::ModelSpec::opt6_7b(),
                                   par::ParallelConfig{1, 1, 4, 8},
                                   /*budget=*/2600, chunk, mode, blk);
                s.drive(workload);
                s.sim.run();
                EXPECT_EQ(s.blockViolations, 0)
                    << "workload " << variant << " chunk " << chunk
                    << " mode " << engine::toString(mode);
                EXPECT_EQ(s.violations, 0)
                    << "workload " << variant << " chunk " << chunk
                    << " mode " << engine::toString(mode);
                EXPECT_GT(s.boundaries, 0);
                EXPECT_EQ(s.requests.completedCount(),
                          static_cast<long>(workload.size()))
                    << "workload " << variant << " chunk " << chunk
                    << " mode " << engine::toString(mode);
            }
        }
        ++variant;
    }
}

/**
 * Run SpotServe over the churn trace with block-granular accounting,
 * asserting at every boundary of every replica that the ceil-rounded
 * held blocks fit the block budget, reservations fit it in Reserve
 * mode, and the bottleneck-stage bytes stay under the GPU line.
 */
SystemInvariantResult
runBlockSystemInvariant(const wl::Workload &workload, int chunk_tokens,
                        engine::KvAdmissionMode mode, int block_tokens)
{
    const auto spec = model::ModelSpec::gpt20b();
    const auto trace = churnTrace();
    const cost::SeqSpec seq{};
    const cost::MemoryModel mem(spec, kParams);

    sim::Simulation sim;
    cluster::InstanceManager instances(sim, kParams);
    serving::RequestManager requests(sim);
    core::SpotServeOptions options;
    options.designArrivalRate = 0.35;
    options.prefillChunkTokens = chunk_tokens;
    options.kvAdmissionMode = mode;
    options.kvBlockTokens = block_tokens;
    core::SpotServeSystem system(sim, instances, requests, spec, kParams,
                                 seq, options);

    SystemInvariantResult out;
    system.setKvObserver([&](const engine::InferencePipeline &p) {
        ++out.checks;
        const long budget_blocks =
            mem.kvBudgetBlocks(p.config(), block_tokens);
        if (p.kvBlocksHeld() > budget_blocks)
            ++out.violations;
        if (mode == engine::KvAdmissionMode::Reserve &&
            p.kvBlocksReserved() > budget_blocks)
            ++out.violations;
        // Bottleneck-stage bytes: the largest stage holds ceil(L/P)
        // layers of weights and of every held block's KV.
        const int bl = (spec.numLayers() + p.config().pp - 1) /
                       p.config().pp;
        const double kv_bytes = static_cast<double>(p.kvBlocksHeld()) *
                                block_tokens *
                                spec.kvBytesPerTokenPerLayer() * bl /
                                p.config().tp;
        if (mem.weightShardBytes(p.config()) + kv_bytes +
                kParams.workspaceBytes +
                mem.migrationReserveBytes(p.config(), true) >
            kParams.gpu.memBytes)
            ++out.violations;
    });

    instances.setListener(&system);
    instances.loadTrace(trace);
    for (const auto &req : workload) {
        sim.schedule(req.arrival,
                     [&system, req] { system.onRequestArrival(req); });
    }
    sim.run(trace.duration() + 900.0);

    out.migrations = system.migrationsCompleted();
    out.completed = requests.completedCount();
    out.arrived = requests.arrivedCount();
    return out;
}

TEST(BlockSystemTest, HeldBlocksInvariantAcrossTracesAndMigrations)
{
    // Full-system matrix at the paged block size (or the value CI
    // injects via SPOTSERVE_TEST_KV_BLOCK_TOKENS): Poisson, spike and
    // long-input early-stopping workloads across preemption-driven
    // migrations, chunked and unchunked, both admission modes — the
    // inherited mid-prefill batches of the chunked runs are trimmed in
    // block space against the inheriting replica.
    const cost::SeqSpec seq{};
    const int blk = testBlockTokens();
    auto poisson = [&] {
        sim::Rng rng(61);
        auto w = wl::stationaryPoisson(0.3, 900.0, seq, rng);
        wl::capOutputs(w, /*cap=*/512, /*min=*/16, /*max=*/128, rng);
        return w;
    };
    auto spike = [&] {
        sim::Rng rng(62);
        auto w = wl::fluctuating(
            [](sim::SimTime t) {
                return (t >= 300.0 && t < 420.0) ? 1.2 : 0.2;
            },
            1.0, 900.0, seq, rng);
        wl::capOutputs(w, /*cap=*/512, /*min=*/16, /*max=*/128, rng);
        return w;
    };
    auto longInput = [&] {
        sim::Rng rng(63);
        auto w = wl::stationaryPoisson(0.25, 900.0, seq, rng);
        wl::capOutputs(w, /*cap=*/512, /*min=*/16, /*max=*/128, rng);
        const int lens[] = {512, 1024, 2048};
        for (std::size_t i = 0; i < w.size(); ++i)
            w[i].inputLen = lens[i % 3];
        return w;
    };

    int variant = 0;
    for (const auto &make : {std::function<wl::Workload()>(poisson),
                             std::function<wl::Workload()>(spike),
                             std::function<wl::Workload()>(longInput)}) {
        const auto workload = make();
        for (int chunk : {0, 256}) {
            for (const auto mode : {engine::KvAdmissionMode::Reserve,
                                    engine::KvAdmissionMode::Optimistic}) {
                const auto r =
                    runBlockSystemInvariant(workload, chunk, mode, blk);
                EXPECT_EQ(r.violations, 0)
                    << "workload " << variant << " chunk " << chunk
                    << " mode " << engine::toString(mode) << " blk " << blk;
                EXPECT_GT(r.checks, 0);
                EXPECT_GE(r.migrations, 2); // initial + preemption-driven
                EXPECT_EQ(r.completed, r.arrived)
                    << "workload " << variant << " chunk " << chunk
                    << " mode " << engine::toString(mode) << " blk " << blk;
            }
        }
        ++variant;
    }
}

// ---------------------------------------------------------------------
// Arrival-rate estimator cold start (bugfix)
// ---------------------------------------------------------------------

TEST(RequestManagerTest, ArrivalRateColdStartUsesElapsedTime)
{
    // Regression: the estimator used to floor its divisor at 1.0 s, so
    // every trace's first second underestimated alpha (2 arrivals in
    // 0.5 s read as 2/s instead of 4/s) and skewed the controller's
    // first chooseConfig.  The divisor is now the elapsed-since-start
    // time clamped only by a tiny epsilon.
    sim::Simulation sim;
    serving::RequestManager mgr(sim);
    sim.schedule(0.1, [&] { mgr.submit(makeRequest(1, 0.1)); });
    sim.schedule(0.3, [&] { mgr.submit(makeRequest(2, 0.3)); });
    double at_half = 0.0;
    sim.schedule(0.5, [&] { at_half = mgr.estimatedArrivalRate(); });
    double at_two = 0.0;
    sim.schedule(2.0, [&] { at_two = mgr.estimatedArrivalRate(); });
    // Steady state far past the window is unchanged: the full 30 s
    // window divides.
    double steady = 0.0;
    sim.schedule(100.0, [&] {
        mgr.submit(makeRequest(3, 100.0));
        steady = mgr.estimatedArrivalRate();
    });
    sim.run();
    EXPECT_NEAR(at_half, 4.0, 1e-9);  // 2 arrivals / 0.5 s elapsed
    EXPECT_NEAR(at_two, 1.0, 1e-9);   // 2 arrivals / 2.0 s elapsed
    EXPECT_NEAR(steady, 1.0 / 30.0, 1e-9); // 1 arrival in the 30 s window
}

} // namespace
} // namespace spotserve
