/**
 * @file
 * Integration tests: full serving systems on traces, stateful recovery,
 * determinism, ablations, fault tolerance.
 */

#include <gtest/gtest.h>

#include "baselines/reparallelization_system.h"
#include "baselines/rerouting_system.h"
#include "cluster/trace_library.h"
#include "core/spotserve_system.h"
#include "serving/experiment.h"
#include "serving/presets.h"

namespace spotserve {
namespace {

using cluster::AvailabilityTrace;
using cluster::InstanceType;
using cluster::TraceEvent;
using cluster::TraceEventKind;

const cost::CostParams kParams = cost::CostParams::awsG4dn();
const cost::SeqSpec kSeq{};

AvailabilityTrace
steadyTrace(int instances, sim::SimTime duration = 1200.0)
{
    return AvailabilityTrace(
        "steady", duration,
        {TraceEvent{0.0, TraceEventKind::Join, InstanceType::Spot,
                    instances}});
}

wl::Workload
workloadFor(const model::ModelSpec &spec, sim::SimTime duration,
            std::uint64_t seed = 7)
{
    sim::Rng rng(seed);
    return wl::stationaryGamma(wl::defaultRateForModel(spec.name()), 6.0,
                               duration, kSeq, rng);
}

serving::ExperimentResult
run(const model::ModelSpec &spec, const AvailabilityTrace &trace,
    const std::string &system, std::uint64_t seed = 7)
{
    const auto workload = workloadFor(spec, trace.duration(), seed);
    const auto factory = presets::factoryByName(
        system, spec, kParams, kSeq, wl::defaultRateForModel(spec.name()));
    return serving::runExperiment(spec, kParams, trace, workload, factory);
}

TEST(SystemsIntegration, AllRequestsCompleteOnSteadyCluster)
{
    const auto spec = model::ModelSpec::gpt20b();
    for (const char *system :
         {"SpotServe", "Reparallelization", "Rerouting"}) {
        const auto r = run(spec, steadyTrace(8), system);
        EXPECT_EQ(r.unfinished, 0) << system;
        EXPECT_GT(r.completed, 0) << system;
        EXPECT_EQ(r.arrived, r.completed) << system;
    }
}

TEST(SystemsIntegration, SteadyClusterNeedsNoRecovery)
{
    // Without preemptions nothing should ever restart a request.
    const auto spec = model::ModelSpec::gpt20b();
    for (const char *system :
         {"SpotServe", "Reparallelization", "Rerouting"}) {
        const auto r = run(spec, steadyTrace(8), system);
        for (const auto &c : r.perRequest)
            EXPECT_EQ(c.restarts, 0) << system;
    }
}

TEST(SystemsIntegration, DeterministicAcrossRuns)
{
    const auto spec = model::ModelSpec::gpt20b();
    const auto a = run(spec, cluster::traceBS(), "SpotServe");
    const auto b = run(spec, cluster::traceBS(), "SpotServe");
    ASSERT_EQ(a.perRequest.size(), b.perRequest.size());
    for (std::size_t i = 0; i < a.perRequest.size(); ++i) {
        EXPECT_EQ(a.perRequest[i].id, b.perRequest[i].id);
        EXPECT_DOUBLE_EQ(a.perRequest[i].latency, b.perRequest[i].latency);
    }
    EXPECT_DOUBLE_EQ(a.costUsd, b.costUsd);
}

TEST(SystemsIntegration, SpotServeRecoversStatefully)
{
    // On the hostile trace, SpotServe's stateful recovery must carry the
    // vast majority of interrupted requests across reconfigurations
    // without recomputation (restarts == 0).
    const auto spec = model::ModelSpec::gpt20b();
    const auto r = run(spec, cluster::traceBS(), "SpotServe");
    long restarted = 0;
    for (const auto &c : r.perRequest)
        restarted += c.restarts > 0 ? 1 : 0;
    EXPECT_LT(static_cast<double>(restarted), 0.1 * r.completed);
    EXPECT_EQ(r.unfinished, 0);
}

TEST(SystemsIntegration, ReparallelizationRestartsEverythingInFlight)
{
    const auto spec = model::ModelSpec::gpt20b();
    const auto spot = run(spec, cluster::traceBS(), "SpotServe");
    const auto repar = run(spec, cluster::traceBS(), "Reparallelization");
    auto restarted = [](const serving::ExperimentResult &r) {
        long n = 0;
        for (const auto &c : r.perRequest)
            n += c.restarts > 0 ? 1 : 0;
        return n;
    };
    EXPECT_GT(restarted(repar), restarted(spot));
}

TEST(SystemsIntegration, SpotServeBeatsBaselinesOnHostileTrace)
{
    const auto spec = model::ModelSpec::gpt20b();
    const auto spot = run(spec, cluster::traceBS(), "SpotServe");
    const auto repar = run(spec, cluster::traceBS(), "Reparallelization");
    const auto rerout = run(spec, cluster::traceBS(), "Rerouting");
    EXPECT_LT(spot.latencies.percentile(99),
              repar.latencies.percentile(99));
    EXPECT_LT(spot.latencies.percentile(99),
              rerout.latencies.percentile(99));
    EXPECT_LT(spot.latencies.mean(), repar.latencies.mean());
}

TEST(SystemsIntegration, SpotCheaperThanOnDemand)
{
    // Figure 7's premise: the same fleet costs less on spot prices.
    const auto spec = model::ModelSpec::gpt20b();
    AvailabilityTrace spot_trace = steadyTrace(8);
    AvailabilityTrace od_trace(
        "od", 1200.0,
        {TraceEvent{0.0, TraceEventKind::Join, InstanceType::OnDemand, 8}});
    const auto s = run(spec, spot_trace, "SpotServe");
    const auto o = run(spec, od_trace, "SpotServe");
    EXPECT_LT(s.costUsd, o.costUsd);
    EXPECT_NEAR(s.costUsd / o.costUsd,
                kParams.spotPricePerHour / kParams.ondemandPricePerHour,
                0.01);
}

TEST(SystemsIntegration, SurvivesFleetCollapseAndRecovery)
{
    // Drop below the model's minimum, then recover: the system must
    // suspend, keep the requests queued, and finish them all after the
    // fleet returns.
    const auto spec = model::ModelSpec::gpt20b(); // needs 3 instances
    AvailabilityTrace trace(
        "collapse", 1500.0,
        {
            TraceEvent{0.0, TraceEventKind::Join, InstanceType::Spot, 4},
            TraceEvent{300.0, TraceEventKind::PreemptNotice,
                       InstanceType::Spot, 2},
            TraceEvent{600.0, TraceEventKind::Join, InstanceType::Spot, 4},
        });
    sim::Rng rng(3);
    const auto workload = wl::stationaryGamma(0.2, 2.0, 1500.0, kSeq, rng);
    const auto factory =
        presets::factoryByName("SpotServe", spec, kParams, kSeq, 0.2);
    const auto r =
        serving::runExperiment(spec, kParams, trace, workload, factory);
    EXPECT_EQ(r.unfinished, 0);
}

TEST(SystemsIntegration, AblationOrderingOnHostileTrace)
{
    // Figure 9: cumulatively disabling components must not improve tail
    // latency, and the fully ablated variant must be clearly worse.
    const auto spec = model::ModelSpec::gpt20b();
    const auto trace = cluster::traceBS();
    const auto workload = workloadFor(spec, trace.duration());

    auto run_options = [&](core::SpotServeOptions options) {
        options.designArrivalRate = 0.35;
        const auto factory =
            presets::spotServeFactory(spec, kParams, kSeq, options);
        return serving::runExperiment(spec, kParams, trace, workload,
                                      factory);
    };

    core::SpotServeOptions full;
    core::SpotServeOptions ablated;
    ablated.enableController = false;
    ablated.enableMigrationPlanner = false;
    ablated.enableArranger = false;
    ablated.enableDeviceMapper = false;

    const auto r_full = run_options(full);
    const auto r_ablated = run_options(ablated);
    EXPECT_LT(r_full.latencies.percentile(99),
              r_ablated.latencies.percentile(99));
}

TEST(SystemsIntegration, ReroutingKeepsFixedParallelism)
{
    const auto spec = model::ModelSpec::gpt20b();
    const auto r = run(spec, cluster::traceBS(), "Rerouting");
    ASSERT_FALSE(r.configHistory.empty());
    // Exactly one configuration decision, never re-parallelized.
    EXPECT_EQ(r.configHistory.size(), 1u);
}

TEST(SystemsIntegration, SpotServeAdaptsConfiguration)
{
    const auto spec = model::ModelSpec::gpt20b();
    const auto r = run(spec, cluster::traceBS(), "SpotServe");
    EXPECT_GT(r.configHistory.size(), 1u);
    // First decision at high availability is the paper's (2,2,8).
    EXPECT_EQ(r.configHistory.front().config.pp, 2);
    EXPECT_EQ(r.configHistory.front().config.tp, 8);
}

TEST(SystemsIntegration, TokensAccountedForCost)
{
    const auto spec = model::ModelSpec::gpt20b();
    const auto r = run(spec, steadyTrace(8), "SpotServe");
    EXPECT_DOUBLE_EQ(r.tokensGenerated,
                     static_cast<double>(r.completed) * kSeq.outputLen);
    EXPECT_GT(r.costPerToken(), 0.0);
}

TEST(SystemsIntegration, OverlappingGracePeriodsSurvived)
{
    // B_S's 240 s / 255 s notices overlap (§4.2); the system must not
    // deadlock or lose requests.
    const auto spec = model::ModelSpec::opt6_7b();
    const auto r = run(spec, cluster::traceBS(), "SpotServe");
    EXPECT_EQ(r.unfinished, 0);
}

} // namespace
} // namespace spotserve
