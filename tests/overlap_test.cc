/**
 * @file
 * Overlapped-reconfiguration invariants (§4.1-4.2): planning and
 * migration must stay off the serving hot path.
 *
 *  - No request is lost or served twice across an overlapped migration.
 *  - Goodput during the grace windows of a fig8-style churn trace is at
 *    least the synchronous baseline's, and the tail improves.
 *  - Replicas the mapping keeps in place never observe a halt: their
 *    pipeline objects keep hitting iteration boundaries straight through
 *    the Draining/Migrating window.
 *  - Planning is a costed, scheduled event (PlanningLatencyModel), not an
 *    instantaneous global stall.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "simcore/simulation.h"
#include "cluster/trace_library.h"
#include "core/spotserve_system.h"
#include "serving/experiment.h"
#include "workload/workload.h"

namespace spotserve {
namespace {

using cluster::AvailabilityTrace;
using cluster::InstanceType;
using cluster::TraceEvent;
using cluster::TraceEventKind;

const cost::CostParams kParams = cost::CostParams::awsG4dn();
const cost::SeqSpec kSeq{};

/**
 * Fig8-style churn: capacity joins (scale-out reconfig), then staggered
 * preemption notices (scale-in under grace pressure).  The scale
 * transitions keep (P, M, B) while D changes, which is exactly where
 * partial drain must keep the surviving replicas serving.
 */
AvailabilityTrace
growShrinkTrace()
{
    return AvailabilityTrace(
        "growshrink", 1500.0,
        {TraceEvent{0.0, TraceEventKind::Join, InstanceType::Spot, 8},
         TraceEvent{300.0, TraceEventKind::Join, InstanceType::Spot, 4},
         TraceEvent{700.0, TraceEventKind::PreemptNotice, InstanceType::Spot,
                    2},
         TraceEvent{1000.0, TraceEventKind::PreemptNotice, InstanceType::Spot,
                    2}});
}

struct RunResult
{
    long arrived = 0;
    long completed = 0;
    long rejected = 0;
    long unfinished = 0;
    int migrations = 0;
    int partialReconfigs = 0;
    long keptServing = 0;
    long drained = 0;
    long planningEvents = 0;
    double planningTime = 0.0;
    double stall = 0.0;
    double p99 = 0.0;
    double mean = 0.0;
    std::vector<serving::CompletionRecord> completions;
    std::vector<serving::ConfigChange> configs;
    /**
     * Iteration boundaries per live pipeline object: (time, cumulative
     * iterations executed).  The iteration counter is monotone for one
     * pipeline object and resets on a fresh allocation, which guards the
     * straddle check against heap address reuse across deployments.
     */
    std::map<const void *, std::vector<std::pair<sim::SimTime, long>>>
        boundaries;
};

RunResult
runChurn(bool overlapped, const AvailabilityTrace &trace,
         double rate = 0.60)
{
    const auto spec = model::ModelSpec::gpt20b();
    sim::Simulation sim;
    cluster::InstanceManager instances(sim, kParams);
    serving::RequestManager requests(sim);
    core::SpotServeOptions options;
    options.designArrivalRate = rate;
    options.overlappedReconfig = overlapped;
    core::SpotServeSystem system(sim, instances, requests, spec, kParams,
                                 kSeq, options);
    RunResult out;
    system.setKvObserver([&](const engine::InferencePipeline &p) {
        out.boundaries[static_cast<const void *>(&p)].emplace_back(
            sim.now(), p.iterationsExecuted());
    });
    instances.setListener(&system);
    instances.loadTrace(trace);
    sim::Rng rng(7);
    const auto workload =
        wl::stationaryGamma(rate, 6.0, trace.duration(), kSeq, rng);
    for (const auto &req : workload) {
        sim.schedule(req.arrival,
                     [&system, req] { system.onRequestArrival(req); });
    }
    sim.run(trace.duration() + 900.0);

    out.arrived = requests.arrivedCount();
    out.completed = requests.completedCount();
    out.rejected = requests.rejectedCount();
    out.unfinished = requests.unfinishedCount();
    out.migrations = system.migrationsCompleted();
    out.partialReconfigs = system.partialReconfigs();
    out.keptServing = system.pipelinesKeptServing();
    out.drained = system.pipelinesDrained();
    out.planningEvents = system.planningEvents();
    out.planningTime = system.totalPlanningTime();
    out.stall = system.totalMigrationStall();
    out.p99 = requests.latencies().percentile(99);
    out.mean = requests.latencies().mean();
    out.completions = requests.completions();
    out.configs = system.configHistory();
    return out;
}

/** Completions finishing inside any [t, t+width) window. */
long
completionsInWindows(const RunResult &r,
                     const std::vector<double> &starts, double width)
{
    long n = 0;
    for (const auto &c : r.completions) {
        const double done = c.arrival + c.latency;
        for (double t : starts) {
            if (done >= t && done < t + width) {
                ++n;
                break;
            }
        }
    }
    return n;
}

/** Reconfiguration times after the initial deployment. */
std::vector<double>
reconfigTimes(const RunResult &r)
{
    std::vector<double> out;
    for (std::size_t i = 1; i < r.configs.size(); ++i)
        out.push_back(r.configs[i].time);
    return out;
}

TEST(OverlapTest, NoRequestLostOrServedTwice)
{
    for (bool overlapped : {true, false}) {
        const auto r = runChurn(overlapped, growShrinkTrace());
        EXPECT_EQ(r.unfinished, 0) << "overlapped=" << overlapped;
        EXPECT_EQ(r.arrived, r.completed + r.rejected);
        std::set<wl::RequestId> seen;
        for (const auto &c : r.completions) {
            EXPECT_TRUE(seen.insert(c.id).second)
                << "request " << c.id << " completed twice";
        }
        EXPECT_GE(r.migrations, 3);
    }
}

TEST(OverlapTest, PartialDrainKeepsUntouchedReplicasServing)
{
    const auto r = runChurn(true, growShrinkTrace());
    // The D-only transitions of this trace must be partial: at least one
    // replica served straight through at least one reconfiguration.
    EXPECT_GE(r.partialReconfigs, 1);
    EXPECT_GE(r.keptServing, 1);
    // And the sync ablation drains strictly more pipelines for the same
    // trace.
    const auto sync = runChurn(false, growShrinkTrace());
    EXPECT_EQ(sync.partialReconfigs, 0);
    EXPECT_GT(sync.drained, r.drained);
}

TEST(OverlapTest, UntouchedReplicasNeverObserveHalt)
{
    const auto r = runChurn(true, growShrinkTrace());
    ASSERT_GE(r.partialReconfigs, 1);
    // For at least one reconfiguration, some pipeline object's iteration
    // boundaries straddle the change with no serving gap: the kept
    // replica decoded straight through Draining and Migrating.  A halted
    // pipeline would show a gap at least as long as the migration stall;
    // a decode iteration is well under 2 s.
    const auto times = reconfigTimes(r);
    bool straddled = false;
    for (double t : times) {
        for (const auto &[ptr, stamps] : r.boundaries) {
            double before = -1.0, after = -1.0;
            double max_gap = 0.0, prev = -1.0;
            long prev_iters = -1;
            bool monotone = true;
            for (const auto &[s, iters] : stamps) {
                if (s < t - 10.0 || s > t + 10.0)
                    continue;
                if (s <= t)
                    before = s;
                if (s > t && after < 0.0)
                    after = s;
                if (prev >= 0.0)
                    max_gap = std::max(max_gap, s - prev);
                // A drop in the cumulative iteration counter means the
                // address was reused by a fresh pipeline — not one object
                // serving through.
                if (prev_iters >= 0 && iters < prev_iters)
                    monotone = false;
                prev = s;
                prev_iters = iters;
            }
            if (monotone && before >= 0.0 && after >= 0.0 && max_gap < 2.0) {
                straddled = true;
                break;
            }
        }
        if (straddled)
            break;
    }
    EXPECT_TRUE(straddled)
        << "no pipeline kept hitting boundaries through a reconfiguration";
}

TEST(OverlapTest, GoodputThroughGraceWindowsAtLeastSynchronous)
{
    const auto trace = growShrinkTrace();
    const auto over = runChurn(true, trace);
    const auto sync = runChurn(false, trace);

    // Grace windows of the preemption notices (30 s each), plus the
    // sync run's own reconfiguration windows — the spans where the
    // synchronous ablation drains the whole deployment.
    std::vector<double> windows{700.0, 1000.0};
    for (double t : reconfigTimes(sync))
        windows.push_back(t - 30.0);
    const long g_over = completionsInWindows(over, windows, 90.0);
    const long g_sync = completionsInWindows(sync, windows, 90.0);
    EXPECT_GE(g_over, g_sync)
        << "overlapped mode served less through the churn windows";

    // End-to-end, overlapping must not cost tail latency — on this trace
    // it must win it.
    EXPECT_LT(over.p99, sync.p99);
    EXPECT_LE(over.mean, sync.mean);
}

TEST(OverlapTest, PlanningIsCostedAndOffHotPath)
{
    const auto r = runChurn(true, growShrinkTrace());
    // Every post-initial reconfiguration of a live deployment went
    // through a scheduled planning pass.
    EXPECT_GE(r.planningEvents, 1);
    EXPECT_GT(r.planningTime, 0.0);
    // The paper's bound: online optimizer overhead is negligible (<1 s
    // per pass at testbed scale).
    EXPECT_LT(r.planningTime / static_cast<double>(r.planningEvents), 1.0);

    // The sync ablation never plans asynchronously.
    const auto sync = runChurn(false, growShrinkTrace());
    EXPECT_EQ(sync.planningEvents, 0);
    EXPECT_EQ(sync.planningTime, 0.0);
}

} // namespace
} // namespace spotserve
