/**
 * @file
 * Unit and property tests for the discrete-event simulation core.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "simcore/event_queue.h"
#include "simcore/rng.h"
#include "simcore/simulation.h"
#include "simcore/stats.h"

namespace spotserve::sim {
namespace {

TEST(EventQueueTest, FiresInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(3.0, [&] { order.push_back(3); });
    q.schedule(1.0, [&] { order.push_back(1); });
    q.schedule(2.0, [&] { order.push_back(2); });
    while (!q.empty())
        q.pop().fn();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesBreakByScheduleOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        q.schedule(5.0, [&order, i] { order.push_back(i); });
    while (!q.empty())
        q.pop().fn();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueueTest, CancelPreventsExecution)
{
    EventQueue q;
    bool fired = false;
    EventId id = q.schedule(1.0, [&] { fired = true; });
    EXPECT_TRUE(q.cancel(id));
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(fired);
}

TEST(EventQueueTest, CancelIsIdempotent)
{
    EventQueue q;
    EventId id = q.schedule(1.0, [] {});
    EXPECT_TRUE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id));
    EXPECT_FALSE(q.cancel(kInvalidEventId));
    EXPECT_FALSE(q.cancel(9999));
}

// Regression: cancelling an id that already fired used to insert a
// permanent tombstone and decrement the live count, so a later event
// could make the queue report empty() while still holding live work.
TEST(EventQueueTest, CancelAfterFireIsTrueNoOp)
{
    EventQueue q;
    EventId fired = q.schedule(1.0, [] {});
    q.schedule(2.0, [] {});
    q.pop().fn(); // fires `fired`
    EXPECT_FALSE(q.cancel(fired));
    EXPECT_EQ(q.size(), 1u);
    EXPECT_FALSE(q.empty());
    EXPECT_DOUBLE_EQ(q.nextTime(), 2.0);
    EXPECT_EQ(q.cancelledBacklog(), 0u); // no tombstone planted
    q.pop();
    EXPECT_TRUE(q.empty());
}

// Regression: repeated cancel-after-fire must not underflow the live
// count — a fresh event scheduled afterwards has to stay visible.
TEST(EventQueueTest, CancelAfterFireDoesNotCorruptLiveCount)
{
    EventQueue q;
    std::vector<EventId> ids;
    for (int i = 0; i < 8; ++i)
        ids.push_back(q.schedule(1.0 + i, [] {}));
    while (!q.empty())
        q.pop();
    for (EventId id : ids)
        EXPECT_FALSE(q.cancel(id));
    EXPECT_EQ(q.size(), 0u);

    bool fired = false;
    q.schedule(50.0, [&] { fired = true; });
    EXPECT_EQ(q.size(), 1u);
    q.pop().fn();
    EXPECT_TRUE(fired);
}

// Tombstones from genuine cancellations are purged as their heap entries
// surface, so the cancelled-id set stays bounded on a long-running
// (wall-clock) process.
TEST(EventQueueTest, CancelledTombstonesArePurged)
{
    EventQueue q;
    std::vector<EventId> ids;
    for (int i = 0; i < 100; ++i)
        ids.push_back(q.schedule(static_cast<SimTime>(i), [] {}));
    for (std::size_t i = 0; i < ids.size(); i += 2)
        EXPECT_TRUE(q.cancel(ids[i]));
    EXPECT_EQ(q.cancelledBacklog(), 50u);
    while (!q.empty())
        q.pop();
    EXPECT_EQ(q.cancelledBacklog(), 0u);
}

TEST(EventQueueTest, SizeTracksLiveEvents)
{
    EventQueue q;
    EventId a = q.schedule(1.0, [] {});
    q.schedule(2.0, [] {});
    EXPECT_EQ(q.size(), 2u);
    q.cancel(a);
    EXPECT_EQ(q.size(), 1u);
    q.pop();
    EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, NextTimeSkipsCancelled)
{
    EventQueue q;
    EventId a = q.schedule(1.0, [] {});
    q.schedule(2.0, [] {});
    q.cancel(a);
    EXPECT_DOUBLE_EQ(q.nextTime(), 2.0);
}

TEST(EventQueueTest, ClearEmptiesEverything)
{
    EventQueue q;
    q.schedule(1.0, [] {});
    q.schedule(2.0, [] {});
    q.clear();
    EXPECT_TRUE(q.empty());
    EXPECT_DOUBLE_EQ(q.nextTime(), kTimeInfinity);
}

TEST(SimulationTest, ClockAdvancesWithEvents)
{
    Simulation sim;
    double seen = -1.0;
    sim.schedule(4.5, [&] { seen = sim.now(); });
    sim.run();
    EXPECT_DOUBLE_EQ(seen, 4.5);
    EXPECT_DOUBLE_EQ(sim.now(), 4.5);
}

TEST(SimulationTest, RunUntilStopsAtHorizon)
{
    Simulation sim;
    int fired = 0;
    sim.schedule(1.0, [&] { ++fired; });
    sim.schedule(10.0, [&] { ++fired; });
    EXPECT_EQ(sim.run(5.0), 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_DOUBLE_EQ(sim.now(), 5.0);
    sim.run();
    EXPECT_EQ(fired, 2);
}

TEST(SimulationTest, EventsCanScheduleMoreEvents)
{
    Simulation sim;
    int chain = 0;
    std::function<void()> tick = [&] {
        if (++chain < 5)
            sim.scheduleAfter(1.0, tick);
    };
    sim.scheduleAfter(1.0, tick);
    sim.run();
    EXPECT_EQ(chain, 5);
    EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(SimulationTest, SchedulingInPastThrows)
{
    Simulation sim;
    sim.schedule(5.0, [] {});
    sim.run();
    EXPECT_THROW(sim.schedule(1.0, [] {}), std::invalid_argument);
    EXPECT_THROW(sim.scheduleAfter(-1.0, [] {}), std::invalid_argument);
}

TEST(SimulationTest, CancelledEventDoesNotFire)
{
    Simulation sim;
    bool fired = false;
    EventId id = sim.schedule(1.0, [&] { fired = true; });
    sim.cancel(id);
    sim.run();
    EXPECT_FALSE(fired);
    EXPECT_EQ(sim.eventsFired(), 0u);
}

TEST(SimulationTest, StepFiresExactlyOne)
{
    Simulation sim;
    int fired = 0;
    sim.schedule(1.0, [&] { ++fired; });
    sim.schedule(2.0, [&] { ++fired; });
    EXPECT_TRUE(sim.step());
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(sim.step());
    EXPECT_FALSE(sim.step());
}

TEST(RngTest, DeterministicPerSeed)
{
    Rng a(42), b(42), c(43);
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
    EXPECT_NE(a.uniform(), c.uniform());
}

TEST(RngTest, UniformInRange)
{
    Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(2.0, 3.0);
        EXPECT_GE(u, 2.0);
        EXPECT_LT(u, 3.0);
    }
}

TEST(RngTest, UniformIntInclusive)
{
    Rng rng(2);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.uniformInt(0, 3);
        ASSERT_GE(v, 0);
        ASSERT_LE(v, 3);
        saw_lo |= v == 0;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ExponentialMeanMatchesRate)
{
    Rng rng(3);
    RunningStat stat;
    for (int i = 0; i < 50000; ++i)
        stat.add(rng.exponential(2.0));
    EXPECT_NEAR(stat.mean(), 0.5, 0.02);
}

/** Gamma intervals must hit the requested mean and CV (paper: CV = 6). */
class GammaCvTest : public ::testing::TestWithParam<double>
{
};

TEST_P(GammaCvTest, MeanAndCvMatch)
{
    const double cv = GetParam();
    Rng rng(7);
    RunningStat stat;
    for (int i = 0; i < 200000; ++i)
        stat.add(rng.gammaInterval(2.0, cv));
    EXPECT_NEAR(stat.mean(), 2.0, 0.15 * cv);
    EXPECT_NEAR(stat.cv(), cv, 0.15 * cv);
}

INSTANTIATE_TEST_SUITE_P(CvSweep, GammaCvTest,
                         ::testing::Values(0.5, 1.0, 2.0, 6.0));

TEST(RngTest, GammaRejectsBadArgs)
{
    Rng rng(1);
    EXPECT_THROW(rng.gammaInterval(0.0, 1.0), std::invalid_argument);
    EXPECT_THROW(rng.gammaInterval(1.0, 0.0), std::invalid_argument);
    EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
}

TEST(LatencyRecorderTest, EmptyIsZero)
{
    LatencyRecorder r;
    EXPECT_EQ(r.count(), 0u);
    EXPECT_DOUBLE_EQ(r.mean(), 0.0);
    EXPECT_DOUBLE_EQ(r.percentile(99), 0.0);
    EXPECT_DOUBLE_EQ(r.max(), 0.0);
}

TEST(LatencyRecorderTest, BasicMoments)
{
    LatencyRecorder r;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        r.add(v);
    EXPECT_DOUBLE_EQ(r.mean(), 2.5);
    EXPECT_DOUBLE_EQ(r.min(), 1.0);
    EXPECT_DOUBLE_EQ(r.max(), 4.0);
    EXPECT_DOUBLE_EQ(r.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(r.percentile(100), 4.0);
    EXPECT_DOUBLE_EQ(r.percentile(50), 2.5);
}

TEST(LatencyRecorderTest, PercentileInterpolates)
{
    LatencyRecorder r;
    r.add(0.0);
    r.add(10.0);
    EXPECT_DOUBLE_EQ(r.percentile(25), 2.5);
    EXPECT_DOUBLE_EQ(r.percentile(99), 9.9);
}

TEST(LatencyRecorderTest, PercentileMonotone)
{
    LatencyRecorder r;
    Rng rng(11);
    for (int i = 0; i < 500; ++i)
        r.add(rng.uniform(0.0, 100.0));
    double prev = 0.0;
    for (double p = 0; p <= 100; p += 1.0) {
        const double v = r.percentile(p);
        EXPECT_GE(v, prev);
        prev = v;
    }
}

TEST(LatencyRecorderTest, SummaryConsistent)
{
    LatencyRecorder r;
    for (int i = 1; i <= 100; ++i)
        r.add(static_cast<double>(i));
    const auto s = r.summary();
    EXPECT_EQ(s.count, 100u);
    EXPECT_DOUBLE_EQ(s.avg, 50.5);
    EXPECT_DOUBLE_EQ(s.p99, r.percentile(99));
    EXPECT_DOUBLE_EQ(s.max, 100.0);
    EXPECT_LE(s.p90, s.p95);
    EXPECT_LE(s.p95, s.p99);
}

TEST(LatencyRecorderTest, InterleavedAddAndQuery)
{
    LatencyRecorder r;
    r.add(5.0);
    EXPECT_DOUBLE_EQ(r.percentile(50), 5.0);
    r.add(1.0);
    EXPECT_DOUBLE_EQ(r.percentile(0), 1.0);
    r.clear();
    EXPECT_EQ(r.count(), 0u);
}

TEST(RunningStatTest, MatchesClosedForm)
{
    RunningStat s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.stddev(), 2.0, 1e-12);
    EXPECT_NEAR(s.cv(), 0.4, 1e-12);
}

TEST(FormatSecondsTest, PicksUnits)
{
    EXPECT_EQ(formatSeconds(2.5), "2.500s");
    EXPECT_EQ(formatSeconds(0.0421), "42.1ms");
}

} // namespace
} // namespace spotserve::sim
