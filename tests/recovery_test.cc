/**
 * @file
 * End-to-end stateful-recovery properties (§4): a surgically placed
 * preemption must not cost interrupted requests their committed tokens,
 * and the recovered requests must finish faster than a recompute-based
 * system would allow.
 */

#include <gtest/gtest.h>

#include "simcore/simulation.h"
#include "cluster/trace_library.h"
#include "serving/presets.h"

namespace spotserve {
namespace {

using cluster::AvailabilityTrace;
using cluster::InstanceType;
using cluster::TraceEvent;
using cluster::TraceEventKind;

const cost::CostParams kParams = cost::CostParams::awsG4dn();
const cost::SeqSpec kSeq{};

/** One preemption notice at t=300 into an otherwise steady fleet. */
AvailabilityTrace
onePreemption()
{
    return AvailabilityTrace(
        "one-preempt", 1200.0,
        {TraceEvent{0.0, TraceEventKind::Join, InstanceType::Spot, 8},
         TraceEvent{300.0, TraceEventKind::PreemptNotice,
                    InstanceType::Spot, 1}});
}

serving::ExperimentResult
runOne(const std::string &system, std::uint64_t seed = 21)
{
    const auto spec = model::ModelSpec::gpt20b();
    const auto trace = onePreemption();
    sim::Rng rng(seed);
    const auto workload =
        wl::stationaryGamma(0.35, 2.0, trace.duration(), kSeq, rng);
    const auto factory =
        presets::factoryByName(system, spec, kParams, kSeq, 0.35);
    return serving::runExperiment(spec, kParams, trace, workload, factory);
}

TEST(StatefulRecoveryTest, NoRecomputationAcrossOnePreemption)
{
    const auto r = runOne("SpotServe");
    EXPECT_EQ(r.unfinished, 0);
    // Token-level commits survive the migration: nothing recomputes.
    for (const auto &c : r.perRequest)
        EXPECT_EQ(c.restarts, 0) << "request " << c.id;
}

TEST(StatefulRecoveryTest, OutputConservation)
{
    // "SpotServe ... produces identical results as serving the LLM using
    // on-demand instances": every request yields its full output exactly
    // once, preemptions or not.
    for (const char *system :
         {"SpotServe", "Reparallelization", "Rerouting"}) {
        const auto r = runOne(system);
        EXPECT_EQ(r.unfinished, 0) << system;
        EXPECT_DOUBLE_EQ(r.tokensGenerated,
                         static_cast<double>(r.completed) * kSeq.outputLen)
            << system;
        // No duplicate completions.
        std::set<wl::RequestId> ids;
        for (const auto &c : r.perRequest)
            EXPECT_TRUE(ids.insert(c.id).second) << system;
    }
}

TEST(StatefulRecoveryTest, RecoveredTailBeatsRecomputingBaseline)
{
    // Around the preemption window, the reactive full-restart baseline
    // must show a visibly worse tail than stateful recovery.
    const auto spot = runOne("SpotServe");
    const auto repar = runOne("Reparallelization");
    auto window_max = [](const serving::ExperimentResult &r) {
        double mx = 0.0;
        for (const auto &c : r.perRequest) {
            if (c.arrival >= 200.0 && c.arrival <= 500.0)
                mx = std::max(mx, c.latency);
        }
        return mx;
    };
    EXPECT_LT(window_max(spot), window_max(repar));
}

TEST(StatefulRecoveryTest, MigrationStatsExposed)
{
    const auto spec = model::ModelSpec::gpt20b();
    const auto trace = onePreemption();
    sim::Rng rng(21);
    const auto workload =
        wl::stationaryGamma(0.35, 2.0, trace.duration(), kSeq, rng);

    sim::Simulation sim;
    cluster::InstanceManager instances(sim, kParams);
    serving::RequestManager requests(sim);
    core::SpotServeOptions options;
    options.designArrivalRate = 0.35;
    core::SpotServeSystem system(sim, instances, requests, spec, kParams,
                                 kSeq, options);
    instances.setListener(&system);
    instances.loadTrace(trace);
    for (const auto &req : workload) {
        sim.schedule(req.arrival,
                     [&system, req] { system.onRequestArrival(req); });
    }
    sim.run(trace.duration() + 600.0);

    EXPECT_GE(system.migrationsCompleted(), 2); // initial + preemption
    // The reconfiguration reused live context (re-sharding M=8 -> M=4
    // keeps ~1/8 of each new shard in place; the rest moves over NCCL).
    EXPECT_GT(system.totalBytesReused(), 0.0);
    EXPECT_GT(system.totalBytesMigrated(), 0.0);
    EXPECT_GT(system.totalMigrationStall(), 0.0);
}

} // namespace
} // namespace spotserve
