/**
 * @file
 * Property sweep over configuration transitions: for every (old, new)
 * pair in a realistic set, the mapper + planner pipeline must satisfy
 * byte conservation, co-location, determinism, and timing invariants.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/device_mapper.h"
#include "core/migration_planner.h"

namespace spotserve::core {
namespace {

const cost::CostParams kParams = cost::CostParams::awsG4dn();

struct Transition
{
    par::ParallelConfig from;
    par::ParallelConfig to;
};

class TransitionSweep : public ::testing::TestWithParam<Transition>
{
  protected:
    model::ModelSpec spec = model::ModelSpec::gpt20b();
    DeviceMapper mapper{spec, kParams};
    MigrationPlanner planner{spec, kParams};

    std::vector<std::unique_ptr<cluster::Instance>> storage;
    std::vector<const cluster::Instance *> instances;

    void
    makeInstances(int n)
    {
        for (int i = 0; i < n; ++i) {
            storage.push_back(std::make_unique<cluster::Instance>(
                i, cluster::InstanceType::Spot, 4, 0.0));
            storage.back()->markRunning(0.0);
            instances.push_back(storage.back().get());
        }
    }

    engine::ContextSnapshot
    packedSnapshot(const par::ParallelConfig &cfg, double cache_tokens)
    {
        engine::ContextSnapshot snap;
        par::Topology topo(cfg, spec.numLayers());
        for (int i = 0; i < topo.size(); ++i) {
            engine::GpuContext ctx;
            ctx.gpu = i;
            ctx.instance = i / 4;
            ctx.hasModelContext = true;
            ctx.config = cfg;
            ctx.position = topo.position(i);
            ctx.cacheTokens = cache_tokens;
            snap.gpus.push_back(ctx);
        }
        return snap;
    }
};

TEST_P(TransitionSweep, MapperAndPlannerInvariants)
{
    const auto [from, to] = GetParam();
    const int gpi = kParams.gpusPerInstance;
    const int n = std::max((from.totalGpus() + gpi - 1) / gpi,
                           (to.totalGpus() + gpi - 1) / gpi) +
                  (to.tp > gpi ? 2 : 0);
    makeInstances(n);

    const double tokens = 8 * 600.0;
    const auto snap = packedSnapshot(from, tokens);
    std::vector<double> old_tokens(from.dp, tokens);

    const auto mapping = mapper.map(snap, to, instances, old_tokens);

    // Complete, co-located mesh.
    ASSERT_TRUE(mapping.mesh.complete());
    const auto &topo = mapping.mesh.topology();
    for (int d = 0; d < to.dp; ++d) {
        for (int p = 0; p < to.pp; ++p) {
            std::set<int> insts;
            for (int m = 0; m < to.tp; ++m) {
                insts.insert(cluster::Instance::instanceOfGpu(
                    mapping.mesh.gpuAt(par::Position{d, p, m}), gpi));
            }
            EXPECT_EQ(static_cast<int>(insts.size()),
                      std::max(1, to.tp / gpi))
                << "stage (" << d << "," << p << ") spread over "
                << insts.size() << " instances";
        }
    }

    // Inheritance indices valid and distinct.
    std::set<int> inherited;
    for (int od : mapping.inheritedOldPipeline) {
        if (od >= 0) {
            EXPECT_LT(od, from.dp);
            EXPECT_TRUE(inherited.insert(od).second) << "duplicate";
        }
    }

    const auto plan = planner.plan(snap, mapping, to, old_tokens);

    // Conservation: every needed byte reused, moved, or cold-loaded.
    EXPECT_NEAR(plan.reusedBytes + plan.movedModelBytes + 0.0,
                mapping.neededModelBytes, mapping.neededModelBytes * 1e-6);
    EXPECT_DOUBLE_EQ(plan.coldLoadBytes, 0.0)
        << "peers hold every byte; nothing should come from disk";

    // Timing invariants.
    EXPECT_GE(plan.totalDuration, 0.0);
    EXPECT_LE(plan.resumeOffset, plan.totalDuration + 1e-9);
    ASSERT_EQ(plan.pipelineResume.size(), static_cast<std::size_t>(to.dp));
    for (double r : plan.pipelineResume) {
        EXPECT_GE(r, 0.0);
        EXPECT_LE(r, plan.totalDuration + 1e-9);
    }
    double sum = kParams.migrationSetupTime;
    for (const auto &s : plan.steps) {
        EXPECT_GE(s.duration, 0.0);
        sum += s.duration;
    }
    EXPECT_NEAR(sum, plan.totalDuration, 1e-6);

    // Every layer appears exactly once after the optional cache step.
    std::set<int> layers;
    for (const auto &s : plan.steps) {
        if (!s.isCache()) {
            EXPECT_TRUE(layers.insert(s.layer).second);
        }
    }
    EXPECT_EQ(static_cast<int>(layers.size()), spec.numLayers());

    // Determinism.
    const auto mapping2 = mapper.map(snap, to, instances, old_tokens);
    for (int i = 0; i < topo.size(); ++i) {
        const auto pos = topo.position(i);
        EXPECT_EQ(mapping.mesh.gpuAt(pos), mapping2.mesh.gpuAt(pos));
    }
    const auto plan2 = planner.plan(snap, mapping2, to, old_tokens);
    EXPECT_DOUBLE_EQ(plan.totalDuration, plan2.totalDuration);
    EXPECT_DOUBLE_EQ(plan.movedModelBytes, plan2.movedModelBytes);
}

INSTANTIATE_TEST_SUITE_P(
    PaperTransitions, TransitionSweep,
    ::testing::Values(
        // Figure 4a: re-sharding under a preemption.
        Transition{{1, 2, 8, 8}, {1, 3, 4, 8}},
        // Figure 8 narrative.
        Transition{{2, 2, 8, 8}, {3, 3, 4, 8}},
        Transition{{3, 3, 4, 8}, {3, 2, 8, 8}},
        Transition{{3, 2, 8, 8}, {2, 2, 8, 8}},
        // Scale in/out with unchanged parallelism.
        Transition{{2, 2, 8, 8}, {1, 2, 8, 8}},
        Transition{{1, 2, 8, 8}, {2, 2, 8, 8}},
        // Tensor-only and pipeline-only re-sharding.
        Transition{{1, 3, 4, 8}, {1, 3, 4, 4}},
        Transition{{2, 3, 4, 8}, {2, 2, 8, 8}},
        Transition{{1, 6, 2, 8}, {1, 3, 4, 8}},
        Transition{{1, 4, 1, 8}, {1, 1, 4, 8}},
        // Identity (membership-only) remap.
        Transition{{2, 3, 4, 8}, {2, 3, 4, 8}}),
    [](const ::testing::TestParamInfo<Transition> &info) {
        const auto &t = info.param;
        char buf[64];
        std::snprintf(buf, sizeof(buf), "D%dP%dM%d_to_D%dP%dM%d",
                      t.from.dp, t.from.pp, t.from.tp, t.to.dp, t.to.pp,
                      t.to.tp);
        return std::string(buf);
    });

} // namespace
} // namespace spotserve::core
