/**
 * @file
 * Tests for the device mapper (bipartite matching, §3.3).
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/device_mapper.h"

namespace spotserve::core {
namespace {

const cost::CostParams kParams = cost::CostParams::awsG4dn();

/** Fixture owning a fleet of instances and daemon snapshots. */
class MapperFixture : public ::testing::Test
{
  protected:
    model::ModelSpec spec = model::ModelSpec::gpt20b();

    std::vector<std::unique_ptr<cluster::Instance>> storage;
    std::vector<const cluster::Instance *> instances;

    void
    makeInstances(int n)
    {
        storage.clear();
        instances.clear();
        for (int i = 0; i < n; ++i) {
            storage.push_back(std::make_unique<cluster::Instance>(
                i, cluster::InstanceType::Spot, 4, 0.0));
            storage.back()->markRunning(0.0);
            instances.push_back(storage.back().get());
        }
    }

    /** Snapshot with every GPU of a packed deployment of @p cfg. */
    engine::ContextSnapshot
    packedSnapshot(const par::ParallelConfig &cfg, double cache_tokens = 0.0)
    {
        engine::ContextSnapshot snap;
        par::Topology topo(cfg, spec.numLayers());
        int gpu = 0;
        for (int i = 0; i < topo.size(); ++i, ++gpu) {
            engine::GpuContext ctx;
            ctx.gpu = gpu;
            ctx.instance = gpu / 4;
            ctx.hasModelContext = true;
            ctx.config = cfg;
            ctx.position = topo.position(i);
            ctx.cacheTokens = cache_tokens;
            snap.gpus.push_back(ctx);
        }
        return snap;
    }
};

TEST_F(MapperFixture, IdentityMappingReusesEverything)
{
    par::ParallelConfig cfg{2, 2, 8, 8};
    makeInstances(8);
    const auto snap = packedSnapshot(cfg);
    DeviceMapper mapper(spec, kParams);
    const auto result = mapper.map(snap, cfg, instances, {0.0, 0.0});
    EXPECT_TRUE(result.mesh.complete());
    // Every byte of model context is reused: zero migration needed.
    EXPECT_NEAR(result.reusedModelBytes, result.neededModelBytes,
                result.neededModelBytes * 1e-9);
}

TEST_F(MapperFixture, TensorGroupsStayCoLocated)
{
    par::ParallelConfig cfg{2, 3, 4, 8};
    makeInstances(6);
    DeviceMapper mapper(spec, kParams);
    const auto result =
        mapper.map(engine::ContextSnapshot{}, cfg, instances, {});
    const auto &topo = result.mesh.topology();
    for (int d = 0; d < cfg.dp; ++d) {
        for (int p = 0; p < cfg.pp; ++p) {
            // All M shards of one stage must live on one instance (M<=4).
            int inst = -1;
            for (int m = 0; m < cfg.tp; ++m) {
                const auto g = result.mesh.gpuAt(par::Position{d, p, m});
                const int gi = cluster::Instance::instanceOfGpu(g, 4);
                if (inst < 0)
                    inst = gi;
                EXPECT_EQ(gi, inst) << "stage split across instances";
            }
        }
    }
    (void)topo;
}

TEST_F(MapperFixture, WideTensorGroupsSpanWholeInstances)
{
    par::ParallelConfig cfg{1, 2, 8, 8};
    makeInstances(4);
    DeviceMapper mapper(spec, kParams);
    const auto result =
        mapper.map(engine::ContextSnapshot{}, cfg, instances, {});
    for (int p = 0; p < cfg.pp; ++p) {
        std::set<int> insts;
        for (int m = 0; m < 8; ++m) {
            insts.insert(cluster::Instance::instanceOfGpu(
                result.mesh.gpuAt(par::Position{0, p, m}), 4));
        }
        EXPECT_EQ(insts.size(), 2u); // exactly two full instances
    }
}

TEST_F(MapperFixture, PrefersWarmInstancesOverCold)
{
    // Old deployment (2,2,8) on instances 0..7; two fresh instances join.
    par::ParallelConfig old_cfg{2, 2, 8, 8};
    makeInstances(10);
    const auto snap = packedSnapshot(old_cfg);
    DeviceMapper mapper(spec, kParams);
    // Same config again: the mapper must put it back on the warm 8.
    const auto result = mapper.map(snap, old_cfg, instances, {0.0, 0.0});
    for (par::GpuId g : result.mesh.gpus()) {
        EXPECT_LT(cluster::Instance::instanceOfGpu(g, 4), 8)
            << "mapped onto a cold instance while warm ones existed";
    }
    EXPECT_NEAR(result.reusedModelBytes, result.neededModelBytes, 1.0);
}

TEST_F(MapperFixture, KmBeatsNaiveAfterLoss)
{
    // Lose instance 0 from a (2,2,8) deployment; map (2,3,4) onto the
    // survivors.  KM must reuse more than the id-order assignment.
    par::ParallelConfig old_cfg{2, 2, 8, 8};
    const auto full = packedSnapshot(old_cfg);
    engine::ContextSnapshot snap;
    for (const auto &g : full.gpus) {
        if (g.instance != 0)
            snap.gpus.push_back(g);
    }
    makeInstances(8);
    instances.erase(instances.begin()); // survivors: 1..7
    storage[0]->markPreempted(1.0);

    par::ParallelConfig target{2, 3, 4, 8};
    DeviceMapper km(spec, kParams);
    DeviceMapperOptions naive_opt;
    naive_opt.useKuhnMunkres = false;
    DeviceMapper naive(spec, kParams, naive_opt);

    const auto a = km.map(snap, target, instances, {0.0, 0.0});
    const auto b = naive.map(snap, target, instances, {0.0, 0.0});
    EXPECT_GT(a.reusedModelBytes, b.reusedModelBytes);
    EXPECT_TRUE(a.mesh.complete());
    EXPECT_TRUE(b.mesh.complete());
}

TEST_F(MapperFixture, InheritanceKeepsMostProgressedPipelines)
{
    DeviceMapper mapper(spec, kParams);
    makeInstances(8);
    // Old D=3 with different progress; new D=2 keeps the top two.
    par::ParallelConfig old_cfg{3, 2, 4, 8};
    const auto snap = packedSnapshot(old_cfg, 100.0);
    par::ParallelConfig target{2, 2, 8, 8};
    const auto result =
        mapper.map(snap, target, instances, {50.0, 900.0, 400.0});
    ASSERT_EQ(result.inheritedOldPipeline.size(), 2u);
    EXPECT_EQ(result.inheritedOldPipeline[0], 1); // most progressed
    EXPECT_EQ(result.inheritedOldPipeline[1], 2);
}

TEST_F(MapperFixture, NoInheritanceWithoutProgress)
{
    DeviceMapper mapper(spec, kParams);
    makeInstances(8);
    const auto result = mapper.map(engine::ContextSnapshot{},
                                   par::ParallelConfig{2, 2, 8, 8},
                                   instances, {0.0, 0.0});
    EXPECT_EQ(result.inheritedOldPipeline[0], -1);
    EXPECT_EQ(result.inheritedOldPipeline[1], -1);
}

TEST_F(MapperFixture, ThrowsWhenShort)
{
    DeviceMapper mapper(spec, kParams);
    makeInstances(2);
    EXPECT_THROW(mapper.map(engine::ContextSnapshot{},
                            par::ParallelConfig{2, 2, 8, 8}, instances, {}),
                 std::invalid_argument);
}

TEST_F(MapperFixture, IdentityFastPathByteIdenticalToFullSolve)
{
    // Membership-only remap: the snapshot already holds the exact target
    // placement.  With live cache on every replica the identity is the
    // full solve's unique optimum, so the fast path must reproduce the
    // Hungarian result byte for byte — mesh, inheritance and both reuse
    // accumulators.
    for (const par::ParallelConfig cfg :
         {par::ParallelConfig{2, 2, 8, 8}, par::ParallelConfig{2, 3, 4, 8},
          par::ParallelConfig{3, 2, 4, 8}}) {
        makeInstances((cfg.totalGpus() + 3) / 4 + 1); // one cold spare
        const auto snap = packedSnapshot(cfg, /*cache_tokens=*/600.0);
        const std::vector<double> tokens(cfg.dp, 600.0);

        DeviceMapper fast(spec, kParams); // identityFastPath defaults on
        DeviceMapperOptions full_opt;
        full_opt.identityFastPath = false;
        DeviceMapper full(spec, kParams, full_opt);

        const auto a = fast.map(snap, cfg, instances, tokens);
        const auto b = full.map(snap, cfg, instances, tokens);

        const auto &topo = a.mesh.topology();
        for (int i = 0; i < topo.size(); ++i) {
            const auto pos = topo.position(i);
            EXPECT_EQ(a.mesh.gpuAt(pos), b.mesh.gpuAt(pos))
                << cfg.str() << " position " << pos.str();
        }
        EXPECT_EQ(a.inheritedOldPipeline, b.inheritedOldPipeline)
            << cfg.str();
        EXPECT_DOUBLE_EQ(a.reusedModelBytes, b.reusedModelBytes);
        EXPECT_DOUBLE_EQ(a.reusedCacheBytes, b.reusedCacheBytes);
        EXPECT_DOUBLE_EQ(a.neededModelBytes, b.neededModelBytes);
    }
}

TEST_F(MapperFixture, IdentityFastPathDeclinesPartialCoverage)
{
    // One mesh member lost: the fast path must bail out and the full
    // solve must still produce a complete mapping onto the survivors.
    par::ParallelConfig cfg{2, 2, 8, 8};
    const auto full_snap = packedSnapshot(cfg, 600.0);
    engine::ContextSnapshot snap;
    for (const auto &g : full_snap.gpus) {
        if (g.instance != 3)
            snap.gpus.push_back(g);
    }
    makeInstances(9);
    instances.erase(instances.begin() + 3);
    storage[3]->markPreempted(1.0);

    DeviceMapper mapper(spec, kParams);
    const auto result = mapper.map(snap, cfg, instances, {600.0, 600.0});
    EXPECT_TRUE(result.mesh.complete());
    // The lost instance's positions were rebuilt elsewhere: some model
    // context must move.
    EXPECT_LT(result.reusedModelBytes, result.neededModelBytes);
}

TEST_F(MapperFixture, ReplicaPinsSurviveWeightTies)
{
    // Zero cache tokens everywhere: model-context weights tie across
    // same-shape replicas and the free Hungarian solve may mix stages
    // from different old replicas.  Pins must keep the live replicas'
    // placement verbatim so they can serve through the reconfiguration.
    par::ParallelConfig cfg{3, 3, 4, 8};
    const auto full = packedSnapshot(cfg, /*cache_tokens=*/0.0);
    engine::ContextSnapshot snap;
    for (const auto &g : full.gpus) {
        if (g.instance != 0) // replica 0 loses its first stage
            snap.gpus.push_back(g);
    }
    makeInstances(10);
    instances.erase(instances.begin());
    storage[0]->markPreempted(1.0);

    par::Topology topo(cfg, spec.numLayers());
    auto old_gpus = [&](int d) {
        std::vector<par::GpuId> out;
        for (int p = 0; p < cfg.pp; ++p) {
            for (int m = 0; m < cfg.tp; ++m)
                out.push_back(topo.flatIndex(par::Position{d, p, m}));
        }
        return out;
    };
    std::vector<ReplicaPin> pins;
    pins.push_back(ReplicaPin{0, 1, old_gpus(1)});
    pins.push_back(ReplicaPin{1, 2, old_gpus(2)});

    DeviceMapper mapper(spec, kParams);
    const auto result =
        mapper.map(snap, cfg, instances, {0.0, 700.0, 300.0}, pins);
    EXPECT_TRUE(result.mesh.complete());
    EXPECT_EQ(result.mesh.pipelineGpus(0), old_gpus(1));
    EXPECT_EQ(result.mesh.pipelineGpus(1), old_gpus(2));
    // Pinned replicas inherit themselves; the drained old replica 0 had
    // no progress worth inheriting... but here it has tokens 0.0 anyway.
    EXPECT_EQ(result.inheritedOldPipeline[0], 1);
    EXPECT_EQ(result.inheritedOldPipeline[1], 2);
    // The rebuilt replica must not reuse any pinned GPU.
    std::set<par::GpuId> pinned;
    for (const auto &p : pins)
        pinned.insert(p.gpus.begin(), p.gpus.end());
    for (par::GpuId g : result.mesh.pipelineGpus(2))
        EXPECT_EQ(pinned.count(g), 0u);

    // Malformed pins are rejected loudly.
    std::vector<ReplicaPin> bad;
    bad.push_back(ReplicaPin{0, 1, {1, 2, 3}}); // wrong size
    EXPECT_THROW(mapper.map(snap, cfg, instances, {}, bad),
                 std::invalid_argument);
}

TEST_F(MapperFixture, DeterministicMapping)
{
    par::ParallelConfig cfg{2, 3, 4, 8};
    makeInstances(8);
    const auto snap = packedSnapshot(par::ParallelConfig{2, 2, 8, 8});
    DeviceMapper mapper(spec, kParams);
    const auto a = mapper.map(snap, cfg, instances, {0.0, 0.0});
    const auto b = mapper.map(snap, cfg, instances, {0.0, 0.0});
    for (int i = 0; i < a.mesh.topology().size(); ++i) {
        const auto pos = a.mesh.topology().position(i);
        EXPECT_EQ(a.mesh.gpuAt(pos), b.mesh.gpuAt(pos));
    }
}

} // namespace
} // namespace spotserve::core
