/**
 * @file
 * Iteration-level (continuous) batching: admission at decode-iteration
 * boundaries, per-request completion mid-batch, FIFO fairness across
 * requeues, JIT halting over mixed-progress batches, and the headline
 * regression — continuous batching beats run-to-completion batching on a
 * Poisson arrival workload at the same parallel configuration.
 */

#include <gtest/gtest.h>

#include <map>

#include "simcore/simulation.h"
#include "engine/inference_pipeline.h"
#include "model/model_spec.h"
#include "serving/request_manager.h"
#include "workload/workload.h"

namespace spotserve {
namespace {

const cost::CostParams kParams = cost::CostParams::awsG4dn();

wl::Request
makeRequest(wl::RequestId id, sim::SimTime arrival = 0.0, int output_len = 128)
{
    wl::Request r;
    r.id = id;
    r.arrival = arrival;
    r.inputLen = 512;
    r.outputLen = output_len;
    return r;
}

/**
 * A single-replica serving loop: one pipeline fed from a RequestManager,
 * with iteration-level admission optionally wired (continuous vs rigid
 * run-to-completion batching, everything else identical).
 */
struct MiniServer
{
    sim::Simulation sim;
    model::ModelSpec spec = model::ModelSpec::opt6_7b();
    cost::LatencyModel latency{spec, kParams};
    par::ParallelConfig config{1, 1, 4, 8};
    serving::RequestManager requests{sim};
    std::unique_ptr<engine::InferencePipeline> pipeline;
    std::map<wl::RequestId, sim::SimTime> completedAt;

    explicit MiniServer(bool continuous)
    {
        engine::InferencePipeline::Callbacks cb;
        cb.onRequestComplete = [this](const engine::ActiveRequest &r) {
            completedAt[r.request.id] = sim.now();
            requests.complete(r);
        };
        cb.onIdle = [this](engine::InferencePipeline &) { dispatch(); };
        if (continuous) {
            cb.onAdmit = [this](engine::InferencePipeline &, int free_slots) {
                return requests.admitAtBoundary(free_slots);
            };
        }
        pipeline = std::make_unique<engine::InferencePipeline>(
            sim, latency, config, 0, std::move(cb));
    }

    void dispatch()
    {
        if (!pipeline->idle() || pipeline->haltPending() ||
            requests.pendingEmpty()) {
            return;
        }
        auto batch = requests.nextBatch(config.batch);
        if (!batch.empty())
            pipeline->startBatch(std::move(batch));
    }

    void submit(const wl::Request &r)
    {
        requests.submit(r);
        dispatch();
    }

    void drive(const wl::Workload &workload)
    {
        for (const auto &req : workload)
            sim.schedule(req.arrival, [this, req] { submit(req); });
    }
};

TEST(ContinuousBatchingTest, AdmitsAtDecodeIterationBoundary)
{
    MiniServer s(true);
    s.drive({makeRequest(1, 0.0), makeRequest(2, 2.0)});

    // By t=3 the second request must have joined the live batch at an
    // iteration boundary — well before the first one finishes.
    s.sim.run(3.0);
    EXPECT_TRUE(s.pipeline->executing());
    EXPECT_EQ(s.pipeline->batch().size(), 2u);
    EXPECT_EQ(s.pipeline->admittedMidBatch(), 1);
    EXPECT_EQ(s.requests.midBatchAdmissions(), 1);

    s.sim.run();
    EXPECT_EQ(s.requests.completedCount(), 2);
    EXPECT_TRUE(s.pipeline->idle());
}

TEST(ContinuousBatchingTest, RigidBatchingWaitsForTheWholeBatch)
{
    MiniServer s(false);
    s.drive({makeRequest(1, 0.0), makeRequest(2, 2.0)});
    s.sim.run(3.0);
    // No admission path: the newcomer queues until the batch completes.
    EXPECT_EQ(s.pipeline->batch().size(), 1u);
    EXPECT_EQ(s.requests.pendingCount(), 1u);
    s.sim.run();
    EXPECT_EQ(s.requests.completedCount(), 2);
    EXPECT_EQ(s.requests.midBatchAdmissions(), 0);
    // The second request could only start after the first one finished.
    EXPECT_GE(s.completedAt[2], s.completedAt[1]);
}

TEST(ContinuousBatchingTest, RequestsLeaveTheBatchIndividually)
{
    MiniServer s(true);
    s.drive({makeRequest(1, 0.0, 16), makeRequest(2, 0.0, 128)});
    s.sim.run();
    ASSERT_EQ(s.requests.completedCount(), 2);
    // The short request completes mid-batch, after which the remaining
    // one keeps decoding alone.
    EXPECT_LT(s.completedAt[1], s.completedAt[2]);
    // The second request joined at the boundary after the first one's
    // prefill, so its 128 decode iterations trail by one boundary.
    EXPECT_EQ(s.pipeline->iterationsExecuted(), 129);
    EXPECT_EQ(s.pipeline->tokensCommitted(), 16 + 128);
}

TEST(ContinuousBatchingTest, NewcomerPrefillCostedByLatencyModel)
{
    const auto spec = model::ModelSpec::opt6_7b();
    const cost::LatencyModel latency(spec, kParams);
    par::ParallelConfig c{1, 1, 4, 8};

    par::ParallelConfig p2 = c;
    p2.batch = 2;
    par::ParallelConfig d3 = c;
    d3.batch = 3;

    // Single-phase iterations reduce exactly to the base model...
    EXPECT_DOUBLE_EQ(latency.mixedIterTime(c, 2, 512, 0, 0),
                     latency.prefillTime(p2, 512));
    EXPECT_DOUBLE_EQ(latency.mixedIterTime(c, 0, 0, 3, 600),
                     latency.decodeIterTime(d3, 600));
    // ...and a mixed iteration pays both phases.
    EXPECT_DOUBLE_EQ(latency.mixedIterTime(c, 2, 512, 3, 600),
                     latency.prefillTime(p2, 512) +
                         latency.decodeIterTime(d3, 600));
    EXPECT_THROW(latency.mixedIterTime(c, 0, 0, 0, 0),
                 std::invalid_argument);
}

TEST(ContinuousBatchingTest, FifoFairnessAcrossRequeueAndInterruption)
{
    sim::Simulation sim;
    serving::RequestManager mgr(sim);
    for (int i = 0; i < 4; ++i)
        mgr.submit(makeRequest(i, static_cast<double>(i)));

    // Requests 0 and 1 enter a batch, get interrupted, lose their cache.
    auto batch = mgr.nextBatch(2);
    ASSERT_EQ(batch.size(), 2u);
    for (auto &r : batch)
        r.resetForRestart();
    mgr.requeue(std::move(batch));

    // Boundary admission hands them back in arrival order, ahead of the
    // younger requests that never ran.
    const auto admitted = mgr.admitAtBoundary(3);
    ASSERT_EQ(admitted.size(), 3u);
    EXPECT_EQ(admitted[0].request.id, 0);
    EXPECT_EQ(admitted[1].request.id, 1);
    EXPECT_EQ(admitted[2].request.id, 2);
    EXPECT_EQ(admitted[0].restarts, 1);
    EXPECT_EQ(mgr.midBatchAdmissions(), 3);
    EXPECT_EQ(mgr.pendingCount(), 1u);
}

TEST(ContinuousBatchingTest, HaltAfterDrainsMixedProgressBatch)
{
    MiniServer s(true);
    s.drive({makeRequest(1, 0.0), makeRequest(2, 2.0)});
    s.sim.run(4.0);
    ASSERT_EQ(s.pipeline->batch().size(), 2u);

    s.pipeline->haltAfter(3);
    // Work arriving once the halt is pending must stay queued.
    s.submit(makeRequest(3, s.sim.now()));
    s.sim.run();

    EXPECT_TRUE(s.pipeline->halted());
    EXPECT_EQ(s.requests.pendingCount(), 1u);

    auto drained = s.pipeline->takeBatch();
    ASSERT_EQ(drained.size(), 2u);
    // Per-request committed progress survives the drain, and the
    // incumbent is strictly ahead of the newcomer it was batched with.
    std::map<wl::RequestId, int> committed;
    for (const auto &r : drained)
        committed[r.request.id] = r.committedTokens;
    EXPECT_GT(committed[1], committed[2]);
    EXPECT_GT(committed[1], 0);
    EXPECT_GE(committed[2], 0);
}

TEST(ContinuousBatchingTest, HaltNowAbandonsOnlyTheInFlightIteration)
{
    MiniServer s(true);
    s.drive({makeRequest(1, 0.0), makeRequest(2, 2.0)});
    s.sim.run(5.0);
    ASSERT_TRUE(s.pipeline->executing());
    ASSERT_EQ(s.pipeline->batch().size(), 2u);

    const long committed_before = s.pipeline->tokensCommitted();
    s.pipeline->haltNow();
    EXPECT_TRUE(s.pipeline->halted());

    // Only the in-flight iteration is lost: the drained batch carries
    // exactly the tokens committed at the last boundary.
    auto drained = s.pipeline->takeBatch();
    long total = 0;
    for (const auto &r : drained)
        total += r.committedTokens;
    EXPECT_EQ(total, committed_before);

    // And nothing else is scheduled for this pipeline.
    const double halted_at = s.sim.now();
    s.sim.run();
    EXPECT_DOUBLE_EQ(s.sim.now(), halted_at);
}

TEST(ContinuousBatchingTest, BeatsRunToCompletionOnPoissonArrivals)
{
    // The headline regression: same ParallelConfig, same Poisson arrival
    // sample, the only difference is iteration-level admission.  Short
    // waits behind long-running batches disappear, so mean request
    // latency must drop strictly.
    const cost::SeqSpec seq{};
    auto run = [&](bool continuous) {
        MiniServer s(continuous);
        sim::Rng rng(1234);
        const auto workload = wl::stationaryPoisson(0.25, 600.0, seq, rng);
        s.drive(workload);
        s.sim.run();
        EXPECT_EQ(s.requests.completedCount(),
                  static_cast<long>(workload.size()));
        return s.requests.latencies().mean();
    };

    const double continuous_mean = run(true);
    const double rigid_mean = run(false);
    EXPECT_LT(continuous_mean, rigid_mean);
}

} // namespace
} // namespace spotserve
