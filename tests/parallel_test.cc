/**
 * @file
 * Tests for parallel configurations, topology arithmetic and device meshes.
 */

#include <gtest/gtest.h>

#include "parallel/device_mesh.h"
#include "parallel/parallel_config.h"

namespace spotserve::par {
namespace {

TEST(ParallelConfigTest, DerivedCounts)
{
    ParallelConfig c{2, 3, 4, 8};
    EXPECT_EQ(c.gpusPerPipeline(), 12);
    EXPECT_EQ(c.totalGpus(), 24);
    EXPECT_EQ(c.concurrentRequests(), 16);
    EXPECT_TRUE(c.valid());
    EXPECT_EQ(c.str(), "(D=2, P=3, M=4, B=8)");
    EXPECT_EQ(c.shortStr(), "(2,3,4)");
}

TEST(ParallelConfigTest, SameParallelismIgnoresBatch)
{
    ParallelConfig a{2, 3, 4, 8};
    ParallelConfig b{2, 3, 4, 1};
    EXPECT_TRUE(a.sameParallelism(b));
    EXPECT_FALSE(a == b);
    b.dp = 3;
    EXPECT_FALSE(a.sameParallelism(b));
}

TEST(ParallelConfigTest, InvalidConfigs)
{
    EXPECT_FALSE((ParallelConfig{0, 1, 1, 1}).valid());
    EXPECT_FALSE((ParallelConfig{1, 0, 1, 1}).valid());
    EXPECT_FALSE((ParallelConfig{1, 1, -1, 1}).valid());
    EXPECT_FALSE((ParallelConfig{1, 1, 1, 0}).valid());
}

/** Position/index round trips across a sweep of configurations. */
class TopologyRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(TopologyRoundTrip, FlatIndexIsInverse)
{
    auto [dp, pp, tp] = GetParam();
    ParallelConfig c{dp, pp, tp, 1};
    Topology topo(c, 48);
    for (int i = 0; i < topo.size(); ++i) {
        const Position pos = topo.position(i);
        EXPECT_EQ(topo.flatIndex(pos), i);
        EXPECT_GE(pos.d, 0);
        EXPECT_LT(pos.d, dp);
        EXPECT_GE(pos.p, 0);
        EXPECT_LT(pos.p, pp);
        EXPECT_GE(pos.m, 0);
        EXPECT_LT(pos.m, tp);
    }
    EXPECT_EQ(static_cast<int>(topo.allPositions().size()), topo.size());
}

INSTANTIATE_TEST_SUITE_P(
    ConfigSweep, TopologyRoundTrip,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(2, 2, 2),
                      std::make_tuple(3, 2, 4), std::make_tuple(2, 3, 4),
                      std::make_tuple(1, 2, 8), std::make_tuple(4, 1, 2),
                      std::make_tuple(2, 6, 1)));

/** Stage layer ranges must partition [0, L). */
class StagePartition : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(StagePartition, LayersPartitioned)
{
    auto [layers, pp] = GetParam();
    Topology topo(ParallelConfig{1, pp, 1, 1}, layers);
    int covered = 0;
    int prev_last = 0;
    for (int p = 0; p < pp; ++p) {
        auto [first, last] = topo.stageLayers(p);
        EXPECT_EQ(first, prev_last);
        EXPECT_GT(last, first);
        prev_last = last;
        covered += last - first;
        for (int l = first; l < last; ++l)
            EXPECT_EQ(topo.stageOfLayer(l), p);
    }
    EXPECT_EQ(covered, layers);
    // Earlier stages take the remainder.
    auto [f0, l0] = topo.stageLayers(0);
    auto [fl, ll] = topo.stageLayers(pp - 1);
    EXPECT_GE(l0 - f0, ll - fl);
}

INSTANTIATE_TEST_SUITE_P(Sweep, StagePartition,
                         ::testing::Values(std::make_pair(32, 1),
                                           std::make_pair(32, 2),
                                           std::make_pair(44, 3),
                                           std::make_pair(60, 7),
                                           std::make_pair(44, 8),
                                           std::make_pair(5, 5)));

TEST(TopologyTest, RejectsMoreStagesThanLayers)
{
    EXPECT_THROW(Topology(ParallelConfig{1, 9, 1, 1}, 8),
                 std::invalid_argument);
}

TEST(TopologyTest, ShardIntervalsTile)
{
    Topology topo(ParallelConfig{1, 1, 4, 1}, 8);
    double prev_hi = 0.0;
    for (int m = 0; m < 4; ++m) {
        auto [lo, hi] = topo.shardInterval(m);
        EXPECT_DOUBLE_EQ(lo, prev_hi);
        EXPECT_DOUBLE_EQ(hi - lo, 0.25);
        prev_hi = hi;
    }
    EXPECT_DOUBLE_EQ(prev_hi, 1.0);
}

TEST(ShardOverlapTest, IdenticalShardsOverlapFully)
{
    EXPECT_DOUBLE_EQ(shardOverlapFraction(1, 4, 1, 4), 0.25);
}

TEST(ShardOverlapTest, DisjointShards)
{
    EXPECT_DOUBLE_EQ(shardOverlapFraction(0, 4, 3, 4), 0.0);
    EXPECT_DOUBLE_EQ(shardOverlapFraction(0, 2, 1, 2), 0.0);
}

TEST(ShardOverlapTest, RefinementNests)
{
    // Shard 0 of 2 covers shards 0 and 1 of 4.
    EXPECT_DOUBLE_EQ(shardOverlapFraction(0, 2, 0, 4), 0.25);
    EXPECT_DOUBLE_EQ(shardOverlapFraction(0, 2, 1, 4), 0.25);
    EXPECT_DOUBLE_EQ(shardOverlapFraction(0, 2, 2, 4), 0.0);
}

TEST(ShardOverlapTest, Symmetry)
{
    for (int m = 0; m < 4; ++m) {
        for (int m2 = 0; m2 < 8; ++m2) {
            EXPECT_DOUBLE_EQ(shardOverlapFraction(m, 4, m2, 8),
                             shardOverlapFraction(m2, 8, m, 4));
        }
    }
}

TEST(ShardOverlapTest, SumsOverTargetEqualSourceWidth)
{
    // The overlap of shard m of M with all shards of M2 covers exactly
    // shard m's width 1/M.
    for (int m = 0; m < 3; ++m) {
        double sum = 0.0;
        for (int m2 = 0; m2 < 5; ++m2)
            sum += shardOverlapFraction(m, 3, m2, 5);
        EXPECT_NEAR(sum, 1.0 / 3.0, 1e-12);
    }
}

TEST(DeviceMeshTest, AssignAndQuery)
{
    DeviceMesh mesh(ParallelConfig{2, 2, 2, 1}, 8);
    EXPECT_FALSE(mesh.complete());
    int gpu = 100;
    for (const auto &pos : mesh.topology().allPositions())
        mesh.assign(pos, gpu++);
    EXPECT_TRUE(mesh.complete());
    EXPECT_EQ(mesh.gpuAt(Position{0, 0, 0}), 100);
    EXPECT_EQ(mesh.gpuAt(Position{1, 1, 1}), 107);
    EXPECT_EQ(mesh.positionOf(103), (Position{0, 1, 1}));
    EXPECT_TRUE(mesh.contains(105));
    EXPECT_FALSE(mesh.contains(99));
}

TEST(DeviceMeshTest, PipelineAndStageViews)
{
    DeviceMesh mesh(ParallelConfig{2, 2, 2, 1}, 8);
    int gpu = 0;
    for (const auto &pos : mesh.topology().allPositions())
        mesh.assign(pos, gpu++);
    EXPECT_EQ(mesh.pipelineGpus(0), (std::vector<GpuId>{0, 1, 2, 3}));
    EXPECT_EQ(mesh.pipelineGpus(1), (std::vector<GpuId>{4, 5, 6, 7}));
    EXPECT_EQ(mesh.stageGpus(1, 0), (std::vector<GpuId>{4, 5}));
    EXPECT_THROW(mesh.pipelineGpus(2), std::out_of_range);
    EXPECT_THROW(mesh.stageGpus(0, 5), std::out_of_range);
}

TEST(DeviceMeshTest, DoubleBindingRejected)
{
    DeviceMesh mesh(ParallelConfig{1, 1, 2, 1}, 4);
    mesh.assign(Position{0, 0, 0}, 7);
    EXPECT_THROW(mesh.assign(Position{0, 0, 1}, 7), std::invalid_argument);
    EXPECT_THROW(mesh.assign(Position{0, 0, 1}, -1), std::invalid_argument);
}

TEST(DeviceMeshTest, ReassignReleasesOldGpu)
{
    DeviceMesh mesh(ParallelConfig{1, 1, 2, 1}, 4);
    mesh.assign(Position{0, 0, 0}, 7);
    mesh.assign(Position{0, 0, 0}, 9);
    EXPECT_FALSE(mesh.contains(7));
    EXPECT_EQ(mesh.gpuAt(Position{0, 0, 0}), 9);
}

TEST(DeviceMeshTest, UnknownGpuThrows)
{
    DeviceMesh mesh(ParallelConfig{1, 1, 1, 1}, 4);
    EXPECT_THROW(mesh.positionOf(3), std::out_of_range);
}

} // namespace
} // namespace spotserve::par
